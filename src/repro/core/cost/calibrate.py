"""Calibrate the cost model against the live substrate.

The paper assumes ``comp_cost`` "is given to us or that reliable
estimates can be obtained from the individual systems".  This module
obtains them: given one (or more) executed programs with measured
per-operation wall times, it fits a per-kind seconds-per-work-unit
scale by least squares, so estimated costs become predictions of this
machine's actual seconds rather than abstract units.

Usage::

    report = ProgramExecutor(source, target).run(program, placement)
    calibration = calibrate(program, report, statistics)
    predicted = calibration.predict(op)          # seconds
    model = calibration.scaled_model(...)        # a CostModel in seconds
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import (
    CostModel,
    CostWeights,
    MachineProfile,
    operation_work,
)
from repro.core.ops.base import Operation
from repro.core.program.dag import TransferProgram
from repro.core.program.executor import ExecutionReport, OperationTiming

_KINDS = ("scan", "combine", "split", "write")


def strategy_key(kind: str, strategy: str) -> str:
    """Calibration key for one (kind, dataplane-strategy) pair.

    The row dataplane keeps the bare kind (``"combine"``) so existing
    calibrations and callers read unchanged; other strategies qualify
    it (``"combine.hash"``, ``"scan.columnar"``), letting one fit hold
    hash, merge and row unit costs side by side.
    """
    if strategy in ("", "row"):
        return kind
    return f"{kind}.{strategy}"


@dataclass(slots=True)
class Calibration:
    """Fitted seconds-per-work-unit by operation kind.

    Keys are :func:`strategy_key` results — bare kinds for the row
    dataplane plus ``<kind>.<strategy>`` entries for every other
    dataplane strategy seen in the timings.
    """

    statistics: StatisticsCatalog
    seconds_per_unit: dict[str, float] = field(default_factory=dict)
    samples: dict[str, int] = field(default_factory=dict)

    def predict(self, op: Operation, strategy: str = "row") -> float:
        """Predicted execution seconds for ``op`` on the calibrated
        machine under the given dataplane strategy (falls back to the
        row fit for uncalibrated strategies, then to the mean scale
        for entirely unseen kinds)."""
        work = operation_work(op, self.statistics)
        scale = self.seconds_per_unit.get(
            strategy_key(op.kind, strategy)
        )
        if scale is None:
            scale = self.seconds_per_unit.get(op.kind)
        if scale is None:
            fitted = [
                value for value in self.seconds_per_unit.values()
                if value > 0
            ]
            scale = sum(fitted) / len(fitted) if fitted else 0.0
        return work * scale

    def scaled_model(self, source: MachineProfile | None = None,
                     target: MachineProfile | None = None,
                     weights: CostWeights | None = None,
                     bandwidth: float = 1.0) -> "CalibratedCostModel":
        """A cost model whose comp costs are calibrated seconds."""
        return CalibratedCostModel(
            self, self.statistics, source, target, weights, bandwidth
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-able form of the fitted scales.

        Statistics are *not* serialized — they describe the document
        being priced, not the machine being calibrated; reattach them
        via :meth:`from_dict` when loading.
        """
        return {
            "seconds_per_unit": dict(self.seconds_per_unit),
            "samples": dict(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object],
                  statistics: StatisticsCatalog) -> "Calibration":
        """Rebuild a calibration serialized by :meth:`to_dict` against
        ``statistics``.  ``predict()`` of the round-tripped object is
        bit-identical to the original's (the scales are stored as
        exact floats, not re-fitted).

        Raises:
            ValueError: if ``data`` lacks the scale mapping.
        """
        raw_scales = data.get("seconds_per_unit")
        if not isinstance(raw_scales, dict):
            raise ValueError(
                "calibration dict has no 'seconds_per_unit' mapping"
            )
        raw_samples = data.get("samples") or {}
        return cls(
            statistics,
            {str(key): float(value)
             for key, value in raw_scales.items()},
            {str(key): int(value)
             for key, value in raw_samples.items()},  # type: ignore[union-attr]
        )


class CalibratedCostModel(CostModel):
    """A :class:`CostModel` that prices computation in fitted seconds."""

    def __init__(self, calibration: Calibration, *args,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.calibration = calibration

    def comp_cost(self, op: Operation, location,
                  strategy: str = "row") -> float:
        base = super().comp_cost(op, location, strategy)
        if base == float("inf"):
            return base  # capability restrictions still apply
        machine = self.machine(location)
        seconds = self.calibration.predict(op, strategy) / machine.speed
        if op.kind == "write":
            seconds *= machine.index_factor
        return seconds


def calibrate(program: TransferProgram, report: ExecutionReport,
              statistics: StatisticsCatalog) -> Calibration:
    """Fit per-kind scales from one executed program.

    Raises:
        ValueError: if the report does not match the program.
    """
    ordered = program.topological_order()
    if len(ordered) != len(report.op_timings):
        raise ValueError(
            "report does not match the program (operation counts "
            f"differ: {len(ordered)} vs {len(report.op_timings)})"
        )
    return calibrate_timings(program, report.op_timings, statistics)


def calibrate_timings(program: TransferProgram,
                      timings: "Iterable[OperationTiming]",
                      statistics: StatisticsCatalog) -> Calibration:
    """Fit per-kind scales from measured per-operation timings.

    For each kind, the least-squares solution of
    ``seconds ≈ scale · work`` over its operations is
    ``Σ(work·seconds) / Σ(work²)``.

    Timings are matched to program nodes by ``op_id``; timings that
    carry no id (``op_id == -1``, e.g. hand-built reports) are paired
    with the unmatched nodes in topological order instead.  Execution
    reports and recorded traces (see
    :func:`repro.obs.drift.calibration_from_trace`) both feed this.

    Raises:
        ValueError: if a timing references an op the program lacks.
    """
    ordered = program.topological_order()
    nodes_by_id = {node.op_id: node for node in ordered}
    matched: list[tuple[Operation, "OperationTiming"]] = []
    positional: list["OperationTiming"] = []
    claimed: set[int] = set()
    for timing in timings:
        if timing.op_id < 0:
            positional.append(timing)
            continue
        node = nodes_by_id.get(timing.op_id)
        if node is None:
            raise ValueError(
                f"timing for op {timing.op_id} ({timing.label!r}) "
                "matches no operation of the program"
            )
        matched.append((node, timing))
        claimed.add(timing.op_id)
    unclaimed = [
        node for node in ordered if node.op_id not in claimed
    ]
    matched.extend(zip(unclaimed, positional))

    numerator: dict[str, float] = {}
    denominator: dict[str, float] = {}
    samples: dict[str, int] = {kind: 0 for kind in _KINDS}
    for node, timing in matched:
        work = operation_work(node, statistics)
        if work <= 0:
            continue
        key = strategy_key(
            node.kind, getattr(timing, "strategy", "row")
        )
        numerator[key] = numerator.get(key, 0.0) + work * timing.seconds
        denominator[key] = denominator.get(key, 0.0) + work * work
        samples[key] = samples.get(key, 0) + 1
    seconds_per_unit = {
        key: (numerator[key] / denominator[key])
        for key in numerator
        if denominator[key] > 0
    }
    return Calibration(statistics, seconds_per_unit, samples)
