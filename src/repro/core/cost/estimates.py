"""Cardinality and size statistics for fragments.

The cost model needs, for any fragment that can appear in a program
(including mid-program combine/split results), an estimated row count
and serialized size.  Both are compositional over *element occurrence
counts*: for fragment ``f``,

* ``rows(f)   = count(root(f))``
* ``size(f)   = Σ_{e ∈ f} count(e) · bytes_per_occurrence(e)``

so a catalog of per-element counts and widths prices every derived
fragment consistently.  Catalogs are built either from real data
(:meth:`StatisticsCatalog.from_document`) or synthetically from the
schema's cardinalities (:meth:`StatisticsCatalog.synthetic`) — the
latter is what the simulator of Section 5.4 uses.
"""

from __future__ import annotations

from repro.core.fragment import Fragment
from repro.core.instance import ElementData
from repro.schema.model import SchemaTree


#: Bytes charged per key (eid) in a tabular sorted feed.
KEY_BYTES = 8.0
#: Per-value separator overhead in a feed.
SEPARATOR_BYTES = 2.0


class StatisticsCatalog:
    """Per-element occurrence counts and byte widths for one schema.

    Two widths are kept per element: the *tagged* width (serialized XML,
    what a published document costs on the wire) and the *value* width
    (text + attribute values only, what a tabular sorted feed carries —
    the paper ships DE fragments as feeds, see Section 4.1's remark on
    sorted feeds and Table 3)."""

    def __init__(self, schema: SchemaTree, counts: dict[str, float],
                 widths: dict[str, float],
                 value_widths: dict[str, float] | None = None) -> None:
        self.schema = schema
        self._counts = counts
        self._widths = widths
        if value_widths is None:
            # Conservative fallback: values are the width minus the
            # fixed tag overhead.
            value_widths = {
                name: max(0.0, widths[name] - (2 * len(name) + 5))
                for name in widths
            }
        self._value_widths = value_widths

    # -- constructors -----------------------------------------------------------

    @classmethod
    def synthetic(cls, schema: SchemaTree, *, fanout: float = 3.0,
                  optional_prob: float = 0.5, text_bytes: float = 12.0,
                  ) -> "StatisticsCatalog":
        """Derive statistics from the schema alone.

        Repeated elements (``*``/``+``) occur ``fanout`` times per
        parent occurrence; optional elements occur ``optional_prob``
        times; leaf text contributes ``text_bytes`` bytes.
        """
        counts: dict[str, float] = {}
        widths: dict[str, float] = {}
        value_widths: dict[str, float] = {}
        for node in schema.iter_nodes():
            parent = schema.parent_of(node.name)
            base = 1.0 if parent is None else counts[parent.name]
            if node.cardinality.repeated:
                multiplier = fanout
            elif node.cardinality.optional:
                multiplier = optional_prob
            else:
                multiplier = 1.0
            counts[node.name] = base * multiplier
            value = text_bytes if node.is_leaf else 0.0
            value += sum(text_bytes / 2 for _ in node.attributes)
            tag = 2 * len(node.name) + 5 + sum(
                len(attr) + 4 for attr in node.attributes
            )
            widths[node.name] = tag + value
            value_widths[node.name] = value
        return cls(schema, counts, widths, value_widths)

    @classmethod
    def from_document(cls, schema: SchemaTree,
                      root: ElementData) -> "StatisticsCatalog":
        """Measure exact statistics from a materialized document."""
        counts: dict[str, float] = {name: 0.0 for name in
                                    schema.element_names()}
        byte_totals: dict[str, float] = {name: 0.0 for name in
                                         schema.element_names()}
        value_totals: dict[str, float] = {name: 0.0 for name in
                                          schema.element_names()}
        for node in root.iter_all():
            counts[node.name] += 1
            value = len(node.text) + sum(
                len(value) for value in node.attrs.values()
            )
            tag = 2 * len(node.name) + 5 + sum(
                len(key) + 4 for key in node.attrs
            )
            byte_totals[node.name] += tag + value
            value_totals[node.name] += value
        widths = {
            name: (byte_totals[name] / counts[name]) if counts[name] else 0.0
            for name in counts
        }
        value_widths = {
            name: (value_totals[name] / counts[name])
            if counts[name] else 0.0
            for name in counts
        }
        return cls(schema, counts, widths, value_widths)

    # -- per-element accessors ---------------------------------------------------

    def count(self, element: str) -> float:
        """Estimated occurrences of ``element`` in the full document."""
        return self._counts[element]

    def width(self, element: str) -> float:
        """Estimated serialized bytes per occurrence of ``element``."""
        return self._widths[element]

    # -- per-fragment accessors ----------------------------------------------------

    def fragment_rows(self, fragment: Fragment) -> float:
        """Estimated row count of the fragment's instance feed."""
        return self._counts[fragment.root_name]

    def fragment_elements(self, fragment: Fragment) -> float:
        """Estimated total element occurrences in the instance."""
        return sum(self._counts[name] for name in fragment.elements)

    def fragment_size(self, fragment: Fragment) -> float:
        """Estimated serialized (tagged XML) bytes of the instance,
        including the ID/PARENT exposure on each row."""
        body = sum(
            self._counts[name] * self._widths[name]
            for name in fragment.elements
        )
        return body + 24.0 * self.fragment_rows(fragment)

    def fragment_feed_size(self, fragment: Fragment) -> float:
        """Estimated bytes of the instance as a tabular *sorted feed*
        (keys + values, no tags) — the paper's DE wire format and the
        ``size()`` that ``comm_cost`` prices (Section 4.1, Table 3)."""
        body = sum(
            self._counts[name]
            * (KEY_BYTES + SEPARATOR_BYTES + self._value_widths[name])
            for name in fragment.elements
        )
        return body + KEY_BYTES * self.fragment_rows(fragment)
