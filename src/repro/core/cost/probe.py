"""Cost probing (Figure 2, step 3).

The middleware does not know how the endpoints execute operations; it
*probes* them through a narrow interface that returns the cost of each
primitive operation (as in [6], where the middleware probes the
underlying systems for query-cost estimates).  :class:`CostProbe` is
that interface; :class:`EndpointProbe` adapts two live endpoints (each
exposing ``estimate_cost``) plus a channel into one probe; a
:class:`~repro.core.cost.model.CostModel` satisfies the protocol
directly and is what the simulator uses.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.fragment import Fragment
from repro.core.ops.base import Location, Operation


class CostProbe(Protocol):
    """What the optimizers need to price programs."""

    def comp_cost(self, op: Operation, location: Location) -> float:
        """Cost of executing ``op`` at ``location``."""
        ...

    def comm_cost(self, fragment: Fragment) -> float:
        """Cost of shipping one instance of ``fragment``."""
        ...


class _CostReportingEndpoint(Protocol):
    def estimate_cost(self, op: Operation) -> float:
        ...


class _SizedChannel(Protocol):
    def transfer_cost(self, size_bytes: float) -> float:
        ...


class EndpointProbe:
    """Probe two live endpoints and a channel for costs.

    This is the deployment configuration of Figure 2: each system
    implements an interface providing the cost of each primitive
    operation; the agency combines those with the channel's transfer
    cost.  Fragment sizes come from the supplied estimator (typically a
    :class:`~repro.core.cost.estimates.StatisticsCatalog` built from the
    source's statistics).
    """

    def __init__(self, source: _CostReportingEndpoint,
                 target: _CostReportingEndpoint,
                 channel: _SizedChannel,
                 size_of: "_FragmentSizer") -> None:
        self.source = source
        self.target = target
        self.channel = channel
        self.size_of = size_of

    def comp_cost(self, op: Operation, location: Location) -> float:
        endpoint = (
            self.source if location is Location.SOURCE else self.target
        )
        return endpoint.estimate_cost(op)

    def comm_cost(self, fragment: Fragment) -> float:
        return self.channel.transfer_cost(
            self.size_of.fragment_feed_size(fragment)
        )


class _FragmentSizer(Protocol):
    def fragment_feed_size(self, fragment: Fragment) -> float:
        ...
