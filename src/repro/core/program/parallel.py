"""Parallel execution of transfer programs (the Section 5.2 opportunity).

    "In this setup, the program is a series of Scan(f) -> Write(f)
    operations.  This observation offers an opportunity for parallelism
    in the execution that we did not pursue here.  All pieces of the
    programs were executed sequentially in all of our experiments."

A transfer program decomposes into per-Write *expressions*
(Definition 3.10); expressions that share no operations can run
concurrently.  :func:`partition_expressions` computes the maximal
independent groups (expressions sharing any node are merged, since a
value is consumed exactly once), and :func:`simulate_parallel_makespan`
turns a sequential :class:`~repro.core.program.executor.ExecutionReport`
into the makespan a ``workers``-way parallel executor would achieve,
using longest-processing-time list scheduling.

The estimate is exact for the simulated quantities (communication) and
a standard model for the measured ones (per-operation wall times are
taken as task weights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ops.base import Operation
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.executor import ExecutionReport


def partition_expressions(program: TransferProgram
                          ) -> list[list[Operation]]:
    """Group the program into maximal independent sub-programs.

    Each group is the union of the per-Write expressions that share
    operations (e.g. two targets fed by one Split end up together);
    groups are returned write-roots-first in stable program order.
    """
    parent: dict[int, int] = {}

    def find(op_id: int) -> int:
        while parent[op_id] != op_id:
            parent[op_id] = parent[parent[op_id]]
            op_id = parent[op_id]
        return op_id

    def union(first: int, second: int) -> None:
        parent[find(first)] = find(second)

    for node in program.nodes:
        parent[node.op_id] = node.op_id
    for edge in program.edges:
        union(edge.producer.op_id, edge.consumer.op_id)

    groups: dict[int, list[Operation]] = {}
    for node in program.nodes:
        groups.setdefault(find(node.op_id), []).append(node)
    return list(groups.values())


@dataclass(slots=True)
class ParallelEstimate:
    """Sequential vs parallel execution of one program run."""

    sequential_seconds: float
    parallel_seconds: float
    groups: int
    workers: int

    @property
    def speedup(self) -> float:
        """Sequential time over parallel makespan (>= 1)."""
        if self.parallel_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.parallel_seconds


def simulate_parallel_makespan(program: TransferProgram,
                               placement: Placement,
                               report: ExecutionReport,
                               workers: int = 4,
                               comm_overlap: float = 0.0
                               ) -> ParallelEstimate:
    """Estimate the makespan of running ``program`` with ``workers``
    concurrent streams, from a sequential run's measurements.

    Each independent group's duration is the sum of its operations'
    measured times plus its share of communication time, attributed by
    the *bytes* its cross-edges actually shipped (``report.
    shipment_bytes``); when the report carries no per-edge byte
    accounting every cross-edge weighs the same.  Groups are then
    list-scheduled longest-first onto the workers.

    ``comm_overlap`` (0..1) credits *intra-edge* pipelining: under the
    streaming dataplane a cross-edge ships chunk *i* while chunk *i+1*
    is still being produced, so up to ``min(compute, comm)`` of a
    group's communication hides behind its computation.  ``0`` models
    the materialized dataplane (each edge is one monolithic transfer
    that cannot start until its producer finishes); ``1`` models
    perfect chunk-level overlap — a fully streamed run with many small
    batches approaches it.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not 0.0 <= comm_overlap <= 1.0:
        raise ValueError("comm_overlap must be within [0, 1]")
    groups = partition_expressions(program)
    # Per-op measured seconds.  Timings carry the op id; fall back to
    # positional matching (topological order = sequential execution
    # order) for reports recorded without ids.
    seconds_by_op: dict[int, float] = {}
    if all(timing.op_id >= 0 for timing in report.op_timings):
        for timing in report.op_timings:
            seconds_by_op[timing.op_id] = timing.seconds
    else:
        ordered = program.topological_order()
        for node, timing in zip(ordered, report.op_timings):
            seconds_by_op[node.op_id] = timing.seconds

    cross = program.cross_edges(placement)
    group_of: dict[int, int] = {}
    for index, group in enumerate(groups):
        for node in group:
            group_of[node.op_id] = index
    cross_weight = [0.0] * len(groups)
    for edge in cross:
        key = (edge.producer.op_id, edge.output_index)
        weight = float(report.shipment_bytes.get(key, 1.0)) \
            if report.shipment_bytes else 1.0
        cross_weight[group_of[edge.producer.op_id]] += weight
    total_weight = sum(cross_weight) or 1.0

    durations = []
    for index, group in enumerate(groups):
        compute = sum(
            seconds_by_op.get(node.op_id, 0.0) for node in group
        )
        comm = report.comm_seconds * cross_weight[index] / total_weight
        hidden = comm_overlap * min(compute, comm)
        durations.append(compute + comm - hidden)

    sequential = sum(durations)
    # LPT list scheduling.
    loads = [0.0] * workers
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return ParallelEstimate(
        sequential_seconds=sequential,
        parallel_seconds=max(loads) if loads else 0.0,
        groups=len(groups),
        workers=workers,
    )
