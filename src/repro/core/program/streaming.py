"""Streaming execution of placed programs over RowBatch pipelines.

This is the bounded-memory dataplane behind the executors'
``batch_rows`` knob.  The placed DAG is compiled into a network of lazy
batch iterators — Scan streams off the endpoint, Combine/Split
transform per batch (:meth:`~repro.core.ops.combine.Combine.
apply_batches` / :meth:`~repro.core.ops.split.Split.apply_batches`),
cross-edges ship each batch through the channel as its own message —
and the Write nodes *drive* the network by pulling: a batch travels the
whole chain scan → transform → ship → load before the next one is
produced, so resident rows stay bounded by the batch size times the
pipeline depth (plus Combine's child frontier) instead of the document
size.

Sequentially the Writes drive one after another in topological order.
In parallel mode every Write's chain is one task on the compute pool —
independent expressions stream concurrently — and each cross-edge gets
a prefetch stage on a second pool so producing batch *i+1* overlaps
shipping batch *i* within a single edge (the intra-edge pipelining the
materialized dataplane cannot do).

Accounting matches the materialized executors': per-operation seconds
measure each node's own work (upstream production pulled from inside a
consumer is charged to the producer, not the consumer), and shipment /
peak-memory fields follow the single definition on
:class:`~repro.core.program.executor.ExecutionReport`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Iterator

from repro.errors import ProgramError
from repro.core.columnar import ColumnBatch
from repro.core.ops.base import Location, Operation
from repro.core.ops.combine import Combine
from repro.core.ops.scan import Scan
from repro.core.ops.split import Split
from repro.core.ops.write import Write
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.executor import (
    DataEndpoint,
    ExecutionReport,
    OperationTiming,
    ShippingChannel,
    apply_robustness,
    critical_path_seconds,
)
from repro.core.program.journal import ExchangeJournal, write_key
from repro.core.stream import FragmentStream, ResidencyMeter, RowBatch
from repro.net.faults import (
    ReliableBatchLink,
    RetryPolicy,
    RobustnessStats,
)
from repro.obs.metrics import (
    MetricsRegistry,
    observe_join,
    observe_operation,
    observe_shipment,
)
from repro.obs.trace import NULL_TRACER, Tracer


class _AbortedRun(RuntimeError):
    """Internal: a task bailed because another task already failed."""


class _NodeStats:
    """Per-node accumulators filled while batches flow."""

    __slots__ = ("seconds", "rows")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.rows = 0


class _Prefetch:
    """Pulls an upstream iterator on a pool into a bounded queue.

    The consumer's pulls then overlap the producer's work — on a
    cross-edge this is what lets shipping batch *i* (in the consumer)
    overlap producing batch *i+1* (here).  ``abort`` unblocks both
    sides when the run fails elsewhere.
    """

    _DONE = object()
    _POLL_SECONDS = 0.05

    def __init__(self, source: Iterator[RowBatch],
                 pool: ThreadPoolExecutor, abort: threading.Event,
                 depth: int = 2) -> None:
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._abort = abort
        pool.submit(self._produce, source)

    def _produce(self, source: Iterator[RowBatch]) -> None:
        try:
            for batch in source:
                if not self._put(batch):
                    return
            self._put(self._DONE)
        except BaseException as exc:  # noqa: BLE001 - forwarded below
            self._put(exc)

    def _put(self, item: object) -> bool:
        while not self._abort.is_set():
            try:
                self._queue.put(item, timeout=self._POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False

    def __iter__(self) -> "_Prefetch":
        return self

    def __next__(self) -> RowBatch:
        while True:
            try:
                item = self._queue.get(timeout=self._POLL_SECONDS)
            except queue.Empty:
                if self._abort.is_set():
                    raise _AbortedRun("streaming run aborted") from None
                continue
            if item is self._DONE:
                raise StopIteration
            if isinstance(item, BaseException):
                raise item
            return item


class StreamingRun:
    """One streaming execution of a placed program."""

    def __init__(self, program: TransferProgram, placement: Placement,
                 source: DataEndpoint, target: DataEndpoint,
                 channel: ShippingChannel, batch_rows: int,
                 retry: RetryPolicy | None = None,
                 journal: ExchangeJournal | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 columnar: bool = False,
                 join_strategy: str | None = None) -> None:
        self.program = program
        self.placement = placement
        self.source = source
        self.target = target
        self.channel = channel
        self.batch_rows = batch_rows
        self.retry = retry
        self.journal = journal
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        #: Columnar dataplane: flat-storable fragments move as
        #: :class:`~repro.core.columnar.ColumnBatch` (Combine runs the
        #: build/probe join, Split projects columns); non-flat
        #: fragments fall back to row batches per stream.
        self.columnar = columnar
        #: Pins the columnar Combine's join strategy ("hash"/"merge");
        #: ``None`` auto-selects from observed feed order.
        self.join_strategy = join_strategy
        self._rstats = RobustnessStats()
        self.report = ExecutionReport(batch_rows=batch_rows)
        self.meter = ResidencyMeter()
        self._lock = threading.Lock()
        self._stats = {
            node.op_id: _NodeStats() for node in program.nodes
        }
        #: Per-op dataplane strategy actually used ("row" when absent;
        #: "columnar" for columnar scan/split/write, the join strategy
        #: for a columnar combine) — reported on each OperationTiming.
        self._strategies: dict[int, str] = {}
        self._abort = threading.Event()
        self._prefetch_pool: ThreadPoolExecutor | None = None
        self._leftovers: list[tuple[int, int]] = []

    # -- driving ----------------------------------------------------------------

    def execute_sequential(self) -> ExecutionReport:
        """Drive every Write in topological order, single-threaded."""
        started = time.perf_counter()
        if self.journal is not None:
            self.report.resume_count = self.journal.begin_run()
        drives = self._build()
        for drive in drives:
            self._drive_write(*drive)
        return self._finish(started)

    def execute_parallel(self, workers: int) -> ExecutionReport:
        """Drive every Write as its own task on a ``workers``-wide
        pool, with cross-edge prefetch on a second pool."""
        started = time.perf_counter()
        if self.journal is not None:
            self.report.resume_count = self.journal.begin_run()
        # One prefetch thread per cross-edge: a producer occupies its
        # thread while blocked on its bounded queue, so a smaller pool
        # deadlocks whenever the running producers feed writes that are
        # queued behind writes whose own producers never got a thread
        # (placements with multi-input cross chains hit this).
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-stream",
        ) as compute, ThreadPoolExecutor(
            max_workers=max(workers, self._cross_edge_count(), 1),
            thread_name_prefix="repro-prefetch",
        ) as prefetch:
            self._prefetch_pool = prefetch
            drives = self._build()
            futures = [
                compute.submit(self._drive_write, *drive)
                for drive in drives
            ]
            failure: BaseException | None = None
            for future in as_completed(futures):
                exc = future.exception()
                if exc is None:
                    continue
                self._abort.set()
                if failure is None or isinstance(failure, _AbortedRun):
                    failure = exc
        if failure is not None:
            raise failure
        return self._finish(started)

    def _cross_edge_count(self) -> int:
        """Edges whose producer and consumer are placed apart — each
        one becomes a :class:`_Prefetch` producer in parallel mode."""
        count = 0
        for node in self.program.nodes:
            location = self.placement[node.op_id]
            for edge in self.program.in_edges(node):
                if self.placement[edge.producer.op_id] is not location:
                    count += 1
        return count

    def _finish(self, started: float) -> ExecutionReport:
        if self._leftovers:
            leftovers = ", ".join(
                f"op {op_id} port {port}"
                for op_id, port in self._leftovers
            )
            raise ProgramError(f"unconsumed program outputs: {leftovers}")
        report = self.report
        for node in self.program.topological_order():
            stats = self._stats[node.op_id]
            location = self.placement[node.op_id]
            strategy = self._strategies.get(node.op_id, "row")
            report.op_timings.append(
                OperationTiming(node.label(), node.kind, location,
                                stats.seconds, stats.rows, node.op_id,
                                strategy)
            )
            report.comp_seconds[location] += stats.seconds
            if node.kind == "write":
                report.rows_written += stats.rows
            # Streaming work is interleaved batch by batch, so a
            # node's span is the per-node aggregate, anchored at run
            # start (see docs/observability.md).
            self.tracer.record(
                node.label(), "op", start=started,
                seconds=stats.seconds, op_id=node.op_id,
                kind=node.kind, location=location.name.lower(),
                rows=stats.rows, strategy=strategy,
            )
            observe_operation(
                self.metrics, node.kind, stats.seconds, stats.rows
            )
        report.peak_resident_rows = self.meter.peak_rows
        report.peak_resident_bytes = self.meter.peak_bytes
        apply_robustness(report, self._rstats)
        report.wall_seconds = time.perf_counter() - started
        report.critical_path_seconds = critical_path_seconds(
            self.program, report
        )
        return report

    # -- compiling the DAG into a batch network ---------------------------------

    def _build(self) -> list[tuple[Write, DataEndpoint,
                                   Iterator[RowBatch], int]]:
        """Wire every node's output iterators; return the Write drives.

        Resume (journal set): a write acknowledged by an earlier
        attempt gets no drive at all — its input iterator is wired but
        never pulled, so nothing upstream of it is recomputed or
        re-shipped.  A partially-stored write into an endpoint that
        loads incrementally resumes mid-stream: batches up to the
        acknowledged high-water mark (``skip_through``) replay through
        the pipeline but bypass the wire and the store.
        """
        wire_format = getattr(self.channel, "wire_format", False)
        streams: dict[tuple[int, int],
                      tuple[Iterator[RowBatch], Location, bool]] = {}
        drives: list[tuple[Write, DataEndpoint,
                           Iterator[RowBatch], int]] = []
        for node in self.program.topological_order():
            location = self.placement[node.op_id]
            endpoint = (
                self.source if location is Location.SOURCE
                else self.target
            )
            done = False
            skip_through = -1
            if isinstance(node, Write) and self.journal is not None:
                jkey = write_key(node.op_id, node.fragment.name)
                done = self.journal.write_done(jkey)
                if not done and getattr(
                        endpoint, "incremental_writes", False):
                    skip_through = self.journal.acked_through(jkey)
            inputs: list[Iterator[RowBatch]] = []
            input_columnar: list[bool] = []
            for edge in self.program.in_edges(node):
                key = (edge.producer.op_id, edge.output_index)
                iterator, holder, is_columnar = streams.pop(key)
                if holder is not location and not done:
                    if is_columnar and wire_format:
                        # The wire moves serialized *rows*; hop to the
                        # row representation around the ship and come
                        # back columnar on the far side.
                        iterator = (
                            batch.to_row_batch() for batch in iterator
                        )
                    if self._prefetch_pool is not None:
                        iterator = _Prefetch(
                            iterator, self._prefetch_pool, self._abort
                        )
                    iterator = self._shipped(
                        key, iterator, skip_through
                    )
                    if is_columnar and wire_format:
                        iterator = (
                            ColumnBatch.from_row_batch(batch)
                            for batch in iterator
                        )
                inputs.append(iterator)
                input_columnar.append(is_columnar)
            outputs: list[Iterator[RowBatch]]
            columnar_out = False
            if isinstance(node, Scan):
                columnar_out = (
                    self.columnar
                    and node.fragment.is_flat_storable()
                )
                outputs = [self._scan_batches(
                    node, endpoint, columnar_out
                )]
            elif isinstance(node, Combine):
                columnar_out = (
                    all(input_columnar)
                    and node.result.is_flat_storable()
                )
                if columnar_out:
                    outputs = [node.apply_column_batches(
                        inputs[0], inputs[1],
                        tick=self._ticker(node), meter=self.meter,
                        observe=self._join_observer(node),
                        force=self.join_strategy,
                    )]
                else:
                    outputs = [node.apply_batches(
                        self._as_rows(inputs[0], input_columnar[0]),
                        self._as_rows(inputs[1], input_columnar[1]),
                        tick=self._ticker(node), meter=self.meter,
                    )]
            elif isinstance(node, Split):
                columnar_out = (
                    input_columnar[0]
                    and all(piece.is_flat_storable()
                            for piece in node.pieces)
                )
                if columnar_out:
                    outputs = node.apply_column_batches(
                        inputs[0], tick=self._ticker(node),
                        meter=self.meter,
                    )
                else:
                    outputs = node.apply_batches(
                        self._as_rows(inputs[0], input_columnar[0]),
                        tick=self._ticker(node), meter=self.meter,
                    )
            elif isinstance(node, Write):
                if not done:
                    drives.append(
                        (node, endpoint, inputs[0], skip_through)
                    )
                if input_columnar[0]:
                    self._strategies[node.op_id] = "columnar"
                outputs = []
            else:
                raise ProgramError(
                    f"unknown operation kind {node.kind!r}"
                )
            if columnar_out and not isinstance(node, Combine):
                self._strategies[node.op_id] = "columnar"
            elif columnar_out:
                # Pre-seed; the join observer overwrites with the
                # strategy actually selected once the build finishes.
                self._strategies[node.op_id] = (
                    self.join_strategy or "hash"
                )
            for index, output in enumerate(outputs):
                streams[(node.op_id, index)] = (
                    output, location, columnar_out
                )
        # Whatever was wired but never popped is exactly the program's
        # statically dangling ports.
        self._leftovers = self.program.dangling_ports()
        assert sorted(streams) == self._leftovers
        return drives

    def _ticker(self, node: Operation):
        def tick(seconds: float, rows: int) -> None:
            with self._lock:
                stats = self._stats[node.op_id]
                stats.seconds += seconds
                stats.rows += rows

        return tick

    def _join_observer(self, node: Combine):
        """Callback recording a columnar combine's join statistics."""

        def observe(strategy: str, build_rows: int,
                    probe_rows: int) -> None:
            with self._lock:
                self._strategies[node.op_id] = strategy
            observe_join(
                self.metrics, strategy, build_rows, probe_rows
            )

        return observe

    @staticmethod
    def _as_rows(iterator: Iterator[RowBatch],
                 is_columnar: bool) -> Iterator[RowBatch]:
        """Bridge a columnar stream back to row batches (fallback for
        operators whose output cannot stay flat)."""
        if not is_columnar:
            return iterator
        return (batch.to_row_batch() for batch in iterator)

    # -- per-kind batch stages -----------------------------------------------------

    def _scan_batches(self, node: Scan, endpoint: DataEndpoint,
                      columnar: bool = False) -> Iterator[RowBatch]:
        tick = self._ticker(node)

        def generate() -> Iterator[RowBatch]:
            if columnar:
                stream = endpoint.scan_stream_columnar(
                    node.fragment, self.batch_rows
                )
            else:
                stream = endpoint.scan_stream(
                    node.fragment, self.batch_rows
                )
            iterator = iter(stream)
            while True:
                started = time.perf_counter()
                try:
                    batch = next(iterator)
                except StopIteration:
                    tick(time.perf_counter() - started, 0)
                    return
                tick(time.perf_counter() - started, batch.row_count())
                self.meter.acquire(
                    batch.row_count(), batch.estimated_size()
                )
                yield batch

        return generate()

    def _shipped(self, key: tuple[int, int],
                 iterator: Iterator[RowBatch],
                 skip_through: int = -1) -> Iterator[RowBatch]:
        report = self.report
        with self._lock:
            report.shipments += 1
            report.shipment_bytes.setdefault(key, 0)
            report.shipment_seconds.setdefault(key, 0.0)
            report.shipment_batches.setdefault(key, 0)
        link = None
        if self.retry is not None:
            link = ReliableBatchLink(
                self.channel, self.retry, self._rstats, edge=key,
                start_seq=skip_through + 1, tracer=self.tracer,
            )

        def account(shipment, batch: RowBatch,
                    started: float) -> None:
            with self._lock:
                report.comm_bytes += shipment.bytes_sent
                report.comm_seconds += shipment.seconds
                report.shipment_bytes[key] += shipment.bytes_sent
                report.shipment_seconds[key] += shipment.seconds
                report.shipment_batches[key] += 1
            self.tracer.record(
                f"batch {batch.seq} {batch.fragment.name}", "batch",
                start=started, seconds=shipment.seconds,
                edge_op=key[0], edge_port=key[1], seq=batch.seq,
                bytes=shipment.bytes_sent,
                fragment=batch.fragment.name,
            )
            observe_shipment(
                self.metrics, shipment.bytes_sent, shipment.seconds,
                batch=True,
            )

        def generate() -> Iterator[RowBatch]:
            for batch in iterator:
                if batch.seq <= skip_through:
                    # Already stored by the consumer in an earlier
                    # attempt — replay it past the wire unshipped (the
                    # write skips it too).
                    yield batch
                    continue
                started = time.perf_counter()
                if link is not None:
                    shipment, delivered = link.send(batch)
                    account(shipment, batch, started)
                    yield from delivered
                else:
                    shipment = self.channel.ship_batch(batch)
                    account(shipment, batch, started)
                    yield batch
            if link is not None:
                yield from link.finish()

        return generate()

    def _drive_write(self, node: Write, endpoint: DataEndpoint,
                     batches: Iterator[RowBatch],
                     skip_through: int = -1) -> None:
        if self._abort.is_set():
            raise _AbortedRun("streaming run aborted")
        jkey = write_key(node.op_id, node.fragment.name)
        # Per-batch acknowledgements are only meaningful for endpoints
        # that store each batch as it arrives; a materializing endpoint
        # replaces the whole instance at end of stream, so a partial
        # run stored nothing and only the whole-write ack holds.
        incremental = (
            self.journal is not None
            and getattr(endpoint, "incremental_writes", False)
        )
        pull_seconds = 0.0
        rows_total = 0
        pending_release: tuple[int, int] | None = None
        pending_ack: int | None = None

        def instrumented() -> Iterator[RowBatch]:
            nonlocal pull_seconds, rows_total, pending_release, \
                pending_ack
            iterator = iter(batches)
            while True:
                # Resuming the pull means the endpoint finished
                # storing the previously yielded batch — acknowledge
                # it now, before anything else can fail.
                if pending_ack is not None:
                    self.journal.ack_batch(jkey, pending_ack)
                    pending_ack = None
                started = time.perf_counter()
                try:
                    batch = next(iterator)
                except StopIteration:
                    pull_seconds += time.perf_counter() - started
                    return
                pull_seconds += time.perf_counter() - started
                if pending_release is not None:
                    self.meter.release(*pending_release)
                    pending_release = None
                if batch.seq <= skip_through:
                    # Stored by an earlier attempt; don't load again.
                    self.meter.release(
                        batch.row_count(), batch.estimated_size()
                    )
                    continue
                pending_release = (
                    batch.row_count(), batch.estimated_size()
                )
                if incremental:
                    pending_ack = batch.seq
                rows_total += batch.row_count()
                yield batch

        started = time.perf_counter()
        endpoint.write_stream(
            node.fragment, FragmentStream(node.fragment, instrumented())
        )
        elapsed = (time.perf_counter() - started) - pull_seconds
        if pending_release is not None:
            self.meter.release(*pending_release)
        if self.journal is not None:
            if pending_ack is not None:
                self.journal.ack_batch(jkey, pending_ack)
            self.journal.ack_write(jkey)
        self._ticker(node)(max(elapsed, 0.0), rows_total)
