"""The data-transfer program DAG (Definition 3.10).

Nodes are primitive operations; an edge connects a producer's output port
to a consumer's input port.  With a *placement* (a map from operation id
to :class:`~repro.core.ops.base.Location`), edges whose endpoints run on
different systems become *cross-edges* and incur communication cost
(Section 4.1).  Shipping is one-way: a T → S edge is illegal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import PlacementError, ProgramError
from repro.core.fragment import Fragment
from repro.core.ops.base import Location, Operation
from repro.core.ops.scan import Scan
from repro.core.ops.write import Write

Placement = dict[int, Location]


@dataclass(frozen=True, slots=True)
class Edge:
    """A data-flow edge between two operation ports."""

    producer: Operation
    output_index: int
    consumer: Operation
    input_index: int

    @property
    def fragment(self) -> Fragment:
        """The fragment that flows along this edge."""
        return self.producer.outputs[self.output_index]


class TransferProgram:
    """A DAG of primitive operations with port-level edges."""

    def __init__(self) -> None:
        self.nodes: list[Operation] = []
        self.edges: list[Edge] = []
        self._out_edges: dict[int, list[Edge]] = {}
        self._in_edges: dict[int, list[Edge]] = {}

    # -- construction ----------------------------------------------------------

    def add(self, node: Operation) -> Operation:
        """Add a node and return it."""
        self.nodes.append(node)
        self._out_edges.setdefault(node.op_id, [])
        self._in_edges.setdefault(node.op_id, [])
        return node

    def connect(self, producer: Operation, output_index: int,
                consumer: Operation, input_index: int) -> Edge:
        """Connect a producer output port to a consumer input port.

        Raises:
            ProgramError: if ports are out of range, fragments mismatch,
                or the input port is already fed.
        """
        if producer.op_id not in self._out_edges:
            raise ProgramError(f"{producer!r} is not part of this program")
        if consumer.op_id not in self._in_edges:
            raise ProgramError(f"{consumer!r} is not part of this program")
        if not 0 <= output_index < len(producer.outputs):
            raise ProgramError(
                f"{producer.label()} has no output port {output_index}"
            )
        if not 0 <= input_index < len(consumer.inputs):
            raise ProgramError(
                f"{consumer.label()} has no input port {input_index}"
            )
        produced = producer.outputs[output_index]
        expected = consumer.inputs[input_index]
        if produced.elements != expected.elements:
            raise ProgramError(
                f"edge fragment mismatch: {producer.label()} produces "
                f"{produced.name!r} but {consumer.label()} expects "
                f"{expected.name!r}"
            )
        for edge in self._in_edges[consumer.op_id]:
            if edge.input_index == input_index:
                raise ProgramError(
                    f"input {input_index} of {consumer.label()} is "
                    "already connected"
                )
        edge = Edge(producer, output_index, consumer, input_index)
        self.edges.append(edge)
        self._out_edges[producer.op_id].append(edge)
        self._in_edges[consumer.op_id].append(edge)
        return edge

    # -- queries -----------------------------------------------------------------

    def scans(self) -> list[Scan]:
        """All Scan nodes."""
        return [node for node in self.nodes if isinstance(node, Scan)]

    def writes(self) -> list[Write]:
        """All Write nodes."""
        return [node for node in self.nodes if isinstance(node, Write)]

    def in_edges(self, node: Operation) -> list[Edge]:
        """Edges feeding ``node``, sorted by input port."""
        return sorted(
            self._in_edges.get(node.op_id, ()),
            key=lambda edge: edge.input_index,
        )

    def out_edges(self, node: Operation) -> list[Edge]:
        """Edges consuming ``node``'s outputs."""
        return list(self._out_edges.get(node.op_id, ()))

    def consumers_by_port(self) -> dict[tuple[int, int], Edge]:
        """Map each producing ``(op_id, output_index)`` port to its
        consuming edge.  Every port feeds at most one consumer
        (:meth:`validate` enforces it), so the executors can route a
        produced value — or each batch of one — without scanning the
        edge list."""
        return {
            (edge.producer.op_id, edge.output_index): edge
            for edge in self.edges
        }

    def dangling_ports(self) -> list[tuple[int, int]]:
        """Output ports no edge consumes, sorted.  A well-formed
        program has none; executors report them as unconsumed program
        outputs."""
        consumed = {
            (edge.producer.op_id, edge.output_index)
            for edge in self.edges
        }
        return sorted(
            (node.op_id, index)
            for node in self.nodes
            for index in range(len(node.outputs))
            if (node.op_id, index) not in consumed
        )

    def producers(self, node: Operation) -> list[Operation]:
        """Direct upstream neighbours."""
        return [edge.producer for edge in self.in_edges(node)]

    def consumers(self, node: Operation) -> list[Operation]:
        """Direct downstream neighbours."""
        return [edge.consumer for edge in self.out_edges(node)]

    def upstream_closure(self, node: Operation) -> set[int]:
        """Ids of all strict ancestors of ``node``."""
        seen: set[int] = set()
        stack = [edge.producer for edge in self.in_edges(node)]
        while stack:
            current = stack.pop()
            if current.op_id in seen:
                continue
            seen.add(current.op_id)
            stack.extend(self.producers(current))
        return seen

    def downstream_closure(self, node: Operation) -> set[int]:
        """Ids of all strict descendants of ``node``."""
        seen: set[int] = set()
        stack = [edge.consumer for edge in self.out_edges(node)]
        while stack:
            current = stack.pop()
            if current.op_id in seen:
                continue
            seen.add(current.op_id)
            stack.extend(self.consumers(current))
        return seen

    def topological_order(self) -> list[Operation]:
        """Nodes in a topological order.

        Raises:
            ProgramError: if the graph has a cycle.
        """
        indegree = {
            node.op_id: len(self._in_edges.get(node.op_id, ()))
            for node in self.nodes
        }
        by_id = {node.op_id: node for node in self.nodes}
        ready = [node for node in self.nodes if indegree[node.op_id] == 0]
        order: list[Operation] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for edge in self.out_edges(node):
                indegree[edge.consumer.op_id] -= 1
                if indegree[edge.consumer.op_id] == 0:
                    ready.append(by_id[edge.consumer.op_id])
        if len(order) != len(self.nodes):
            raise ProgramError("program graph contains a cycle")
        return order

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness (Def. 3.10 plus builder
        invariants): every input port fed, every output consumed at most
        once, Scans have no producers, acyclicity.

        Raises:
            ProgramError: on the first violation found.
        """
        for node in self.nodes:
            fed = {edge.input_index for edge in self.in_edges(node)}
            if isinstance(node, Scan):
                if fed:
                    raise ProgramError(
                        f"{node.label()} must not have incoming edges"
                    )
            elif fed != set(range(len(node.inputs))):
                raise ProgramError(
                    f"{node.label()} has unconnected input ports "
                    f"{sorted(set(range(len(node.inputs))) - fed)}"
                )
            used = [edge.output_index for edge in self.out_edges(node)]
            if len(used) != len(set(used)):
                raise ProgramError(
                    f"an output of {node.label()} is consumed twice"
                )
        self.topological_order()

    # -- placement ---------------------------------------------------------------

    def placement_from_nodes(self) -> Placement:
        """Collect the current ``location`` annotations as a placement."""
        return {
            node.op_id: node.location
            for node in self.nodes
            if node.location is not None
        }

    def apply_placement(self, placement: Placement) -> None:
        """Write a placement back onto the nodes' ``location`` fields."""
        for node in self.nodes:
            node.location = placement.get(node.op_id)

    def validate_placement(self, placement: Placement) -> None:
        """Check a placement is total and legal (Section 4.1):

        * every node is assigned,
        * Scans run at the source and Writes at the target,
        * shipping is one-way — no T → S edge.

        Raises:
            PlacementError: on the first violation.
        """
        for node in self.nodes:
            location = placement.get(node.op_id)
            if location is None:
                raise PlacementError(f"{node.label()} is unassigned")
            if isinstance(node, Scan) and location is not Location.SOURCE:
                raise PlacementError(
                    f"{node.label()} must run at the source"
                )
            if isinstance(node, Write) and location is not Location.TARGET:
                raise PlacementError(
                    f"{node.label()} must run at the target"
                )
        for edge in self.edges:
            if (placement[edge.producer.op_id] is Location.TARGET
                    and placement[edge.consumer.op_id] is Location.SOURCE):
                raise PlacementError(
                    "illegal target-to-source edge "
                    f"{edge.producer.label()} -> {edge.consumer.label()}"
                )

    def cross_edges(self, placement: Placement) -> list[Edge]:
        """Edges whose endpoints run at different systems."""
        return [
            edge
            for edge in self.edges
            if placement[edge.producer.op_id]
            is not placement[edge.consumer.op_id]
        ]

    def __repr__(self) -> str:
        return (
            f"<TransferProgram {len(self.nodes)} nodes, "
            f"{len(self.edges)} edges>"
        )

    def iter_expressions(self) -> Iterator[list[Operation]]:
        """Group nodes into per-Write expressions (Definition 3.10: one
        expression per target fragment), for rendering."""
        for write in self.writes():
            members = self.upstream_closure(write)
            ordered = [
                node for node in self.topological_order()
                if node.op_id in members
            ]
            ordered.append(write)
            yield ordered
