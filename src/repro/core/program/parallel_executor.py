"""A DAG-scheduled, communication-overlapping program executor.

The paper executed every program piece sequentially and noted the
parallelism opportunity it left on the table (Section 5.2).  This
module pursues it for real:

* the placed DAG is scheduled **event-driven** onto a thread pool of
  ``workers`` compute threads — an operation is submitted the moment
  its last input arrives, so independent expression groups
  (:func:`~repro.core.program.parallel.partition_expressions`) run
  concurrently without any explicit grouping step;
* cross-edge shipping runs on a separate shipper pool, pipelining the
  channel against computation: while fragment *i* is on the wire the
  compute threads are already scanning fragment *i+1*, so
  communication no longer serializes the run (the per-fragment
  concurrent-transfer pattern of the Distributed XML-Query Network
  proposal).

The executor produces an :class:`~repro.core.program.executor.
ExecutionReport` compatible with the sequential
:class:`~repro.core.program.executor.ProgramExecutor` — field semantics
(including shipment accounting) are defined once on
``ExecutionReport`` and hold here unchanged — plus the measured
``wall_seconds`` makespan and the ``critical_path_seconds`` floor.
Written output is byte-identical to the sequential path: every Write
receives exactly the instance the sequential executor would hand it,
and each target fragment is written by exactly one operation.

With ``batch_rows=N`` the run switches to the streaming dataplane
(:mod:`~repro.core.program.streaming`): every Write drives its whole
producer chain as one task, and cross-edges additionally pipeline
*within* themselves — batch *i+1* is produced while batch *i* is on
the wire — which the materialized scheduler cannot do.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.errors import ProgramError
from repro.core.instance import FragmentInstance
from repro.core.ops.base import Location, Operation
from repro.core.program.dag import Edge, Placement, TransferProgram
from repro.core.program.executor import (
    DataEndpoint,
    ExecutionReport,
    OperationTiming,
    ShippingChannel,
    _ZeroCostChannel,
    apply_robustness,
    critical_path_seconds,
    execute_operation,
)
from repro.core.program.journal import ExchangeJournal, write_key
from repro.core.stream import ResidencyMeter
from repro.obs.metrics import (
    MetricsRegistry,
    observe_operation,
    observe_shipment,
)
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.faults import RetryPolicy


class ParallelProgramExecutor:
    """Runs a placed program with ``workers``-way parallelism.

    Drop-in alternative to the sequential
    :class:`~repro.core.program.executor.ProgramExecutor`; the channel
    and both endpoints must be thread-safe (every bundled
    :class:`~repro.net.transport.Transport` implementation and the
    relational / in-memory endpoints are).
    """

    def __init__(self, source: DataEndpoint, target: DataEndpoint,
                 channel: ShippingChannel | None = None,
                 workers: int = 4,
                 batch_rows: int | None = None,
                 retry: "RetryPolicy | None" = None,
                 journal: ExchangeJournal | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 columnar: bool = False,
                 join_strategy: str | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_rows is not None and batch_rows < 1:
            raise ValueError("batch_rows must be >= 1 or None")
        if columnar and batch_rows is None:
            raise ValueError(
                "columnar execution requires batch_rows (the columnar "
                "dataplane is a streaming dataplane)"
            )
        self.source = source
        self.target = target
        self.channel: ShippingChannel = channel or _ZeroCostChannel()
        self.workers = workers
        self.batch_rows = batch_rows
        self.retry = retry
        self.journal = journal
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self.columnar = columnar
        self.join_strategy = join_strategy

    def run(self, program: TransferProgram,
            placement: Placement | None = None) -> ExecutionReport:
        """Execute ``program`` under ``placement`` and return metrics.

        Raises:
            ProgramError: if the program is malformed or leaves
                unconsumed outputs.
            PlacementError: if the placement is illegal or incomplete.
        """
        program.validate()
        if placement is None:
            placement = program.placement_from_nodes()
        program.validate_placement(placement)
        if not program.nodes:
            return ExecutionReport(batch_rows=self.batch_rows)
        if self.batch_rows is not None:
            from repro.core.program.streaming import StreamingRun

            return StreamingRun(
                program, placement, self.source, self.target,
                self.channel, self.batch_rows,
                retry=self.retry, journal=self.journal,
                tracer=self.tracer, metrics=self.metrics,
                columnar=self.columnar,
                join_strategy=self.join_strategy,
            ).execute_parallel(self.workers)
        run = _ScheduledRun(
            program, placement, self.source, self.target,
            self.channel, self.workers,
            retry=self.retry, journal=self.journal,
            tracer=self.tracer, metrics=self.metrics,
        )
        return run.execute()


class _ScheduledRun:
    """One event-driven execution: readiness tracking plus accounting."""

    def __init__(self, program: TransferProgram, placement: Placement,
                 source: DataEndpoint, target: DataEndpoint,
                 channel: ShippingChannel, workers: int,
                 retry: "RetryPolicy | None" = None,
                 journal: ExchangeJournal | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.program = program
        self.placement = placement
        self.source = source
        self.target = target
        self.channel = channel
        self.workers = workers
        self.journal = journal
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self._inflight = (
            metrics.gauge("parallel.inflight")
            if metrics is not None else None
        )
        self._rstats = None
        if retry is not None:
            from repro.net.faults import ReliableChannel, RobustnessStats

            self._rstats = RobustnessStats()
            self.channel = ReliableChannel(
                channel, retry, self._rstats, tracer=self.tracer
            )
        self.report = ExecutionReport()
        self.meter = ResidencyMeter()
        # Scheduling state, guarded by _lock.
        self._lock = threading.Lock()
        self._inputs: dict[int, dict[int, FragmentInstance]] = {}
        self._missing: dict[int, int] = {}
        self._remaining = len(program.nodes)
        self._leftovers: list[tuple[int, int]] = []
        self._failure: BaseException | None = None
        self._done = threading.Event()
        # Each output port feeds at most one consumer (validated).
        self._consumer_of: dict[tuple[int, int], Edge] = \
            program.consumers_by_port()
        for node in program.nodes:
            self._inputs[node.op_id] = {}
            self._missing[node.op_id] = len(program.in_edges(node))

    # -- driving ----------------------------------------------------------------

    def execute(self) -> ExecutionReport:
        started = time.perf_counter()
        if self.journal is not None:
            self.report.resume_count = self.journal.begin_run()
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-compute",
        ) as compute, ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-ship",
        ) as shippers:
            self._compute = compute
            self._shippers = shippers
            seeded = [
                node for node in self.program.topological_order()
                if self._missing[node.op_id] == 0
            ]
            for node in seeded:
                self._submit_compute(node)
            self._done.wait()
        if self._failure is not None:
            raise self._failure
        if self._leftovers:
            leftovers = ", ".join(
                f"op {op_id} port {port}"
                for op_id, port in sorted(self._leftovers)
            )
            raise ProgramError(f"unconsumed program outputs: {leftovers}")
        self.report.peak_resident_rows = self.meter.peak_rows
        self.report.peak_resident_bytes = self.meter.peak_bytes
        if self._rstats is not None:
            apply_robustness(self.report, self._rstats)
        self.report.wall_seconds = time.perf_counter() - started
        self.report.critical_path_seconds = critical_path_seconds(
            self.program, self.report
        )
        return self.report

    def _fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._failure is None:
                self._failure = exc
        self._done.set()

    def _submit_compute(self, node: Operation) -> None:
        """Queue ``node`` on the compute pool, tracking queue depth:
        the ``parallel.inflight`` gauge rises here and falls when the
        node's task finishes, so its peak is the deepest the ready
        queue ever got."""
        if self._inflight is not None:
            self._inflight.add(1)
        self._compute.submit(self._run_node, node)

    # -- tasks -------------------------------------------------------------------

    def _write_done(self, node: Operation) -> bool:
        """Whether ``node`` is a write acknowledged by an earlier
        attempt (skipped wholesale on resume)."""
        return (
            self.journal is not None
            and node.kind == "write"
            and self.journal.write_done(
                write_key(node.op_id, node.fragment.name)
            )
        )

    def _run_node(self, node: Operation) -> None:
        try:
            self._run_node_inner(node)
        finally:
            if self._inflight is not None:
                self._inflight.add(-1)

    def _run_node_inner(self, node: Operation) -> None:
        if self._failure is not None:
            self._done.set()
            return
        try:
            location = self.placement[node.op_id]
            endpoint = (
                self.source if location is Location.SOURCE
                else self.target
            )
            with self._lock:
                slots = self._inputs.pop(node.op_id)
            inputs = [slots[index] for index in sorted(slots)]
            # Sizes must be taken before execution: Combine mutates its
            # parent input and Split consumes its input in place.
            input_sizes = [
                (instance.row_count(), instance.estimated_size())
                for instance in inputs
            ]
            skip = self._write_done(node)
            op_started = time.perf_counter()
            if skip:
                outputs, elapsed, rows = [], 0.0, 0
            else:
                outputs, elapsed, rows = execute_operation(
                    node, endpoint, inputs
                )
                self.tracer.record(
                    node.label(), "op", start=op_started,
                    seconds=elapsed, op_id=node.op_id, kind=node.kind,
                    location=location.name.lower(), rows=rows,
                )
                observe_operation(self.metrics, node.kind, elapsed, rows)
            for in_rows, in_bytes in input_sizes:
                self.meter.release(in_rows, in_bytes)
            for output in outputs:
                self.meter.acquire(
                    output.row_count(), output.estimated_size()
                )
            with self._lock:
                self.report.op_timings.append(
                    OperationTiming(node.label(), node.kind, location,
                                    elapsed, rows, node.op_id)
                )
                self.report.comp_seconds[location] += elapsed
                if node.kind == "write":
                    self.report.rows_written += rows
            if node.kind == "write" and self.journal is not None \
                    and not skip:
                self.journal.ack_write(
                    write_key(node.op_id, node.fragment.name)
                )
            for index, output in enumerate(outputs):
                key = (node.op_id, index)
                edge = self._consumer_of.get(key)
                if edge is None:
                    with self._lock:
                        self._leftovers.append(key)
                    continue
                if self.placement[edge.consumer.op_id] is not location \
                        and not self._write_done(edge.consumer):
                    self._shippers.submit(self._ship, edge, key, output)
                else:
                    self._deliver(edge, output)
            with self._lock:
                self._remaining -= 1
                finished = self._remaining == 0
            if finished:
                self._done.set()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)

    def _ship(self, edge: Edge, key: tuple[int, int],
              instance: FragmentInstance) -> None:
        if self._failure is not None:
            return
        try:
            ship_started = time.perf_counter()
            if self._rstats is not None:
                shipment = self.channel.ship_fragment(instance, edge=key)
            else:
                shipment = self.channel.ship_fragment(instance)
            self.tracer.record(
                f"ship {instance.fragment.name}", "ship",
                start=ship_started, seconds=shipment.seconds,
                edge_op=key[0], edge_port=key[1],
                bytes=shipment.bytes_sent,
                fragment=instance.fragment.name,
            )
            observe_shipment(
                self.metrics, shipment.bytes_sent, shipment.seconds
            )
            with self._lock:
                self.report.comm_bytes += shipment.bytes_sent
                self.report.comm_seconds += shipment.seconds
                self.report.shipments += 1
                self.report.shipment_bytes[key] = shipment.bytes_sent
                self.report.shipment_seconds[key] = shipment.seconds
            self._deliver(edge, instance)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._fail(exc)

    def _deliver(self, edge: Edge,
                 instance: FragmentInstance) -> None:
        consumer = edge.consumer
        with self._lock:
            self._inputs[consumer.op_id][edge.input_index] = instance
            self._missing[consumer.op_id] -= 1
            ready = self._missing[consumer.op_id] == 0
        if ready:
            self._submit_compute(consumer)
