"""Execute placed data-transfer programs against system endpoints.

The executor walks the DAG in topological order.  ``Scan`` and ``Write``
are delegated to the owning endpoint (each system implements its own,
Defs. 3.6/3.9); ``Combine`` and ``Split`` run wherever their node is
placed, and their elapsed time is attributed to that system.  When an
edge crosses systems the value is shipped through the channel, which
accounts bytes and simulated transfer time (Section 4.1's ``comm_cost``).

Two dataplanes share this interface.  With ``batch_rows=None`` (the
default, the paper's setup) every edge carries a whole materialized
:class:`~repro.core.instance.FragmentInstance`.  With ``batch_rows=N``
the run moves :class:`~repro.core.stream.RowBatch` slices end to end
instead (see :mod:`repro.core.program.streaming`): scans produce
batches, combines/splits transform them, writes store them as they
arrive, and cross-edges ship them chunked — peak resident rows are
bounded by the batch size times the pipeline depth rather than by the
document, while the written output stays byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.errors import ProgramError
from repro.core.fragment import Fragment
from repro.core.instance import FragmentInstance
from repro.core.ops.base import Location, Operation
from repro.core.ops.combine import Combine
from repro.core.ops.scan import Scan
from repro.core.ops.split import Split
from repro.core.ops.write import Write
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.journal import ExchangeJournal, write_key
from repro.core.stream import FragmentStream, ResidencyMeter, RowBatch
from repro.obs.metrics import (
    MetricsRegistry,
    observe_operation,
    observe_shipment,
)
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.faults import RetryPolicy


class DataEndpoint(Protocol):
    """What the executor needs from a system (source or target)."""

    def scan(self, fragment: Fragment) -> FragmentInstance:
        """Produce the instance of ``fragment`` (Scan, Def. 3.6)."""
        ...

    def write(self, fragment: Fragment,
              instance: FragmentInstance) -> None:
        """Store ``instance`` (Write, Def. 3.9)."""
        ...

    def scan_stream(self, fragment: Fragment,
                    batch_rows: int) -> FragmentStream:
        """Produce the feed of ``fragment`` as a batch stream."""
        ...

    def write_stream(self, fragment: Fragment,
                     stream: FragmentStream) -> None:
        """Store a batch stream incrementally."""
        ...


class ExecutionMonitor(Protocol):
    """Per-operation observer of a materialized sequential run.

    The executor asks the monitor where each starting operation runs
    (letting it pin the op and serve a freshly re-placed location) and
    reports completions and cross-edge shipments back.  See
    :class:`~repro.adapt.executor.AdaptiveRun`.
    """

    def op_started(self, node: Operation) -> Location:
        """Commit and return the location ``node`` executes at."""
        ...

    def op_finished(self, node: Operation, location: Location,
                    seconds: float, rows: int) -> None:
        """``node`` finished; the monitor may re-place unstarted ops."""
        ...

    def edge_shipped(self, edge, shipment: "Shipment") -> None:
        """A cross-edge value was shipped at consume time."""
        ...


class ShippingChannel(Protocol):
    """What the executor needs from the network between the systems.

    Every :class:`~repro.net.transport.Transport` implementation
    (simulated, in-process, or a real TCP socket) satisfies this
    protocol; the core stays import-free of :mod:`repro.net`.
    """

    def ship_fragment(self, instance: FragmentInstance) -> "Shipment":
        """Transfer an instance source → target; return the receipt."""
        ...

    def ship_batch(self, batch: RowBatch) -> "Shipment":
        """Transfer one batch (chunked streaming); return the receipt."""
        ...


@dataclass(frozen=True, slots=True)
class Shipment:
    """Receipt for one cross-edge transfer."""

    bytes_sent: int
    seconds: float


@dataclass(slots=True)
class OperationTiming:
    """Wall-clock timing of one executed operation.

    ``strategy`` names the dataplane variant that actually ran:
    ``"row"`` for the materialized and row-batch paths, ``"columnar"``
    for columnar scan/split/write, and ``"hash"``/``"merge"`` for the
    two columnar join strategies of Combine — the key the cost
    calibration uses to fit per-strategy unit costs.
    """

    label: str
    kind: str
    location: Location
    seconds: float
    rows: int
    op_id: int = -1
    strategy: str = "row"


@dataclass(slots=True)
class ExecutionReport:
    """Aggregate metrics of one program execution.

    Produced identically by the sequential and the parallel executor,
    for both dataplanes; consumers should not need to know which ran.

    **Time.** ``wall_seconds`` is the end-to-end wall-clock time of the
    run; sequentially it equals ``total_seconds`` up to bookkeeping
    overhead, in parallel it is the measured makespan.
    ``critical_path_seconds`` is the longest compute+ship chain through
    the DAG — the floor no amount of parallelism can beat.

    **Shipment accounting** (the single definition — executors link
    here rather than restating it): every cross-edge counts once in
    ``shipments``; its transferred volume and simulated transfer time
    accumulate in ``comm_bytes``/``comm_seconds`` and, keyed by
    producer port ``(op_id, output_index)``, in ``shipment_bytes``/
    ``shipment_seconds`` so makespan estimators can attribute
    communication by actual volume.  Under the streaming dataplane an
    edge ships many chunks; ``shipment_batches`` records how many per
    edge (empty for materialized runs, where each edge is one
    monolithic message).

    **Peak memory.** ``peak_resident_rows``/``peak_resident_bytes``
    are the high-water marks of fragment rows resident in the
    dataplane (instances in flight, batch frontiers, combine/split
    buffers) as measured by :class:`~repro.core.stream.ResidencyMeter`
    — the quantity the streaming dataplane bounds.  ``batch_rows``
    records the knob the run used (``None`` = materialized).

    **Robustness** (zero on a fault-free run over a perfect channel):
    ``retries`` counts re-sends the reliable shipping layer performed
    after transport failures, ``redelivered_batches`` duplicate
    deliveries it discarded, and ``resume_count`` earlier attempts
    recorded in the run's :class:`~repro.core.program.journal.
    ExchangeJournal` (0 when no journal, or on its first attempt).
    ``retries_by_edge``/``redelivered_by_edge`` break those totals
    down by producer port — counts are *summed* per edge as the
    reliable links report them, so edges sharing one retry layer (and
    repeated runs merging into one stats object) accumulate instead
    of overwriting each other.
    """

    op_timings: list[OperationTiming] = field(default_factory=list)
    comp_seconds: dict[Location, float] = field(
        default_factory=lambda: {
            Location.SOURCE: 0.0, Location.TARGET: 0.0,
        }
    )
    comm_bytes: int = 0
    comm_seconds: float = 0.0
    shipments: int = 0
    rows_written: int = 0
    wall_seconds: float = 0.0
    critical_path_seconds: float = 0.0
    shipment_bytes: dict[tuple[int, int], int] = field(
        default_factory=dict
    )
    shipment_seconds: dict[tuple[int, int], float] = field(
        default_factory=dict
    )
    shipment_batches: dict[tuple[int, int], int] = field(
        default_factory=dict
    )
    peak_resident_rows: int = 0
    peak_resident_bytes: int = 0
    batch_rows: int | None = None
    retries: int = 0
    redelivered_batches: int = 0
    resume_count: int = 0
    retries_by_edge: dict[tuple[int, int], int] = field(
        default_factory=dict
    )
    redelivered_by_edge: dict[tuple[int, int], int] = field(
        default_factory=dict
    )

    @property
    def source_seconds(self) -> float:
        """Computation time spent at the source."""
        return self.comp_seconds[Location.SOURCE]

    @property
    def target_seconds(self) -> float:
        """Computation time spent at the target."""
        return self.comp_seconds[Location.TARGET]

    @property
    def total_seconds(self) -> float:
        """Computation (both systems) plus communication time."""
        return (
            self.source_seconds + self.target_seconds + self.comm_seconds
        )

    def seconds_for_kind(self, kind: str) -> float:
        """Total time of operations of one kind (scan/combine/...)."""
        return sum(
            timing.seconds
            for timing in self.op_timings
            if timing.kind == kind
        )


class _ZeroCostChannel:
    """Accounts bytes but charges no transfer time (LAN-of-zero-latency)."""

    def ship_fragment(self, instance: FragmentInstance) -> Shipment:
        return Shipment(instance.estimated_size(), 0.0)

    def ship_batch(self, batch: RowBatch) -> Shipment:
        return Shipment(batch.estimated_size(), 0.0)


class ProgramExecutor:
    """Runs a placed program against a source and a target endpoint.

    ``batch_rows`` selects the dataplane: ``None`` (default) moves
    whole materialized instances, an integer moves row batches of that
    size through the streaming pipeline instead — same written output,
    bounded resident rows.

    ``retry`` arms the reliable shipping layer (see
    :mod:`repro.net.faults`): cross-edge sends that fail with a
    transport error are re-sent per the policy, duplicate deliveries
    are discarded, re-ordered batch streams are re-assembled.  Without
    it a transport failure propagates (fail-fast).  ``journal`` arms
    checkpoint/resume: completed writes — and, for endpoints that load
    incrementally, individual stored batches — are acknowledged as the
    run progresses, and a rerun over the same journal skips the
    acknowledged work instead of re-shipping it.
    """

    def __init__(self, source: DataEndpoint, target: DataEndpoint,
                 channel: ShippingChannel | None = None,
                 batch_rows: int | None = None,
                 retry: "RetryPolicy | None" = None,
                 journal: ExchangeJournal | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 columnar: bool = False,
                 join_strategy: str | None = None) -> None:
        if batch_rows is not None and batch_rows < 1:
            raise ValueError("batch_rows must be >= 1 or None")
        if columnar and batch_rows is None:
            raise ValueError(
                "columnar execution requires batch_rows (the columnar "
                "dataplane is a streaming dataplane)"
            )
        self.source = source
        self.target = target
        self.channel: ShippingChannel = channel or _ZeroCostChannel()
        self.batch_rows = batch_rows
        self.retry = retry
        self.journal = journal
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self.columnar = columnar
        self.join_strategy = join_strategy

    def _endpoint(self, location: Location) -> DataEndpoint:
        return self.source if location is Location.SOURCE else self.target

    def run(self, program: TransferProgram,
            placement: Placement | None = None,
            monitor: "ExecutionMonitor | None" = None
            ) -> ExecutionReport:
        """Execute ``program`` under ``placement`` and return metrics.

        ``monitor`` (materialized dataplane only) observes the run at
        operation granularity: it supplies each starting op's location
        and is told about completions and shipments — the hook
        :class:`~repro.adapt.executor.AdaptiveRun` uses to re-place
        the not-yet-started suffix between operations.  Values ship
        lazily at consume time against the location the monitor
        returns, so suffix moves stay byte-identical.

        Raises:
            ProgramError: if the program is malformed.
            PlacementError: if the placement is illegal or incomplete.
            ValueError: if a monitor is combined with the streaming
                dataplane (its placement is compiled before any
                execution — see :mod:`repro.core.program.streaming`).
        """
        program.validate()
        if placement is None:
            placement = program.placement_from_nodes()
        program.validate_placement(placement)
        if monitor is not None and self.batch_rows is not None:
            raise ValueError(
                "execution monitors need the materialized dataplane "
                "(batch_rows=None); the streaming pipeline compiles "
                "its placement before execution starts"
            )

        if self.batch_rows is not None:
            from repro.core.program.streaming import StreamingRun

            return StreamingRun(
                program, placement, self.source, self.target,
                self.channel, self.batch_rows,
                retry=self.retry, journal=self.journal,
                tracer=self.tracer, metrics=self.metrics,
                columnar=self.columnar,
                join_strategy=self.join_strategy,
            ).execute_sequential()

        started = time.perf_counter()
        tracer = self.tracer
        report = ExecutionReport()
        if self.journal is not None:
            report.resume_count = self.journal.begin_run()
        channel = self.channel
        stats = None
        if self.retry is not None:
            from repro.net.faults import ReliableChannel, RobustnessStats

            stats = RobustnessStats()
            channel = ReliableChannel(
                self.channel, self.retry, stats, tracer=tracer
            )
        meter = ResidencyMeter()
        # In-flight values keyed by producer port, tagged with the
        # system currently holding them.
        values: dict[tuple[int, int], tuple[FragmentInstance, Location]]
        values = {}
        consumed: set[tuple[int, int]] = set()

        for node in program.topological_order():
            if monitor is not None:
                location = monitor.op_started(node)
            else:
                location = placement[node.op_id]
            # A write acknowledged by an earlier attempt is skipped
            # wholesale on resume: its inputs are consumed (the
            # producers still ran — they may feed other writes) but
            # nothing is shipped or stored again.
            skip = (
                self.journal is not None
                and isinstance(node, Write)
                and self.journal.write_done(
                    write_key(node.op_id, node.fragment.name)
                )
            )
            inputs: list[FragmentInstance] = []
            for edge in program.in_edges(node):
                key = (edge.producer.op_id, edge.output_index)
                try:
                    instance, holder = values.pop(key)
                except KeyError as exc:
                    if key in consumed:
                        detail = "consumed twice"
                    else:
                        detail = (
                            "was never produced (malformed edge or "
                            "missing operation output)"
                        )
                    raise ProgramError(
                        f"value for {edge.producer.label()} output "
                        f"{edge.output_index} {detail}"
                    ) from exc
                consumed.add(key)
                if holder is not location and not skip:
                    ship_started = time.perf_counter()
                    if stats is not None:
                        shipment = channel.ship_fragment(
                            instance, edge=key
                        )
                    else:
                        shipment = channel.ship_fragment(instance)
                    report.comm_bytes += shipment.bytes_sent
                    report.comm_seconds += shipment.seconds
                    report.shipments += 1
                    report.shipment_bytes[key] = shipment.bytes_sent
                    report.shipment_seconds[key] = shipment.seconds
                    tracer.record(
                        f"ship {edge.fragment.name}", "ship",
                        start=ship_started, seconds=shipment.seconds,
                        edge_op=key[0], edge_port=key[1],
                        bytes=shipment.bytes_sent,
                        fragment=edge.fragment.name,
                    )
                    observe_shipment(
                        self.metrics, shipment.bytes_sent,
                        shipment.seconds,
                    )
                    if monitor is not None:
                        monitor.edge_shipped(edge, shipment)
                inputs.append(instance)
            input_sizes = [
                (instance.row_count(), instance.estimated_size())
                for instance in inputs
            ]
            op_started = time.perf_counter()
            if skip:
                outputs, elapsed, rows = [], 0.0, 0
            else:
                outputs, elapsed, rows = self._execute(
                    node, location, inputs
                )
                tracer.record(
                    node.label(), "op", start=op_started,
                    seconds=elapsed, op_id=node.op_id, kind=node.kind,
                    location=location.name.lower(), rows=rows,
                )
                observe_operation(self.metrics, node.kind, elapsed, rows)
            for in_rows, in_bytes in input_sizes:
                meter.release(in_rows, in_bytes)
            for output in outputs:
                meter.acquire(output.row_count(), output.estimated_size())
            report.op_timings.append(
                OperationTiming(node.label(), node.kind, location,
                                elapsed, rows, node.op_id)
            )
            report.comp_seconds[location] += elapsed
            if node.kind == "write":
                report.rows_written += rows
                if self.journal is not None and not skip:
                    self.journal.ack_write(
                        write_key(node.op_id, node.fragment.name)
                    )
            for index, output in enumerate(outputs):
                values[(node.op_id, index)] = (output, location)
            if monitor is not None:
                monitor.op_finished(node, location, elapsed, rows)
        if values:
            leftovers = ", ".join(
                f"op {op_id} port {port}" for op_id, port in values
            )
            raise ProgramError(f"unconsumed program outputs: {leftovers}")
        report.peak_resident_rows = meter.peak_rows
        report.peak_resident_bytes = meter.peak_bytes
        if stats is not None:
            apply_robustness(report, stats)
        report.wall_seconds = time.perf_counter() - started
        report.critical_path_seconds = critical_path_seconds(
            program, report
        )
        return report

    def _execute(self, node: Operation, location: Location,
                 inputs: list[FragmentInstance]
                 ) -> tuple[list[FragmentInstance], float, int]:
        return execute_operation(node, self._endpoint(location), inputs)


def execute_operation(node: Operation, endpoint: DataEndpoint,
                      inputs: list[FragmentInstance]
                      ) -> tuple[list[FragmentInstance], float, int]:
    """Run one primitive operation against ``endpoint`` and time it.

    Shared by the sequential and the parallel executor so both delegate
    Scan/Write identically and measure the same thing.

    Raises:
        ProgramError: on an unknown operation kind.
    """
    start = time.perf_counter()
    if isinstance(node, Scan):
        outputs = [endpoint.scan(node.fragment)]
        rows = outputs[0].row_count()
    elif isinstance(node, Combine):
        outputs = [node.apply(inputs[0], inputs[1])]
        rows = outputs[0].row_count()
    elif isinstance(node, Split):
        outputs = node.apply(inputs[0])
        rows = sum(output.row_count() for output in outputs)
    elif isinstance(node, Write):
        endpoint.write(node.fragment, inputs[0])
        outputs = []
        rows = inputs[0].row_count()
    else:
        raise ProgramError(f"unknown operation kind {node.kind!r}")
    elapsed = time.perf_counter() - start
    return outputs, elapsed, rows


def apply_robustness(report: ExecutionReport, stats) -> None:
    """Fold a :class:`~repro.net.faults.RobustnessStats` into the
    report.

    Shared by all three executors.  Per-edge counters are *added* to
    whatever the report already holds — when several reliable links
    (or several runs merging into one stats object) touched the same
    edge, their counts sum instead of the last writer winning.
    """
    report.retries += stats.retries
    report.redelivered_batches += stats.redelivered
    for edge, count in stats.retries_by_edge.items():
        report.retries_by_edge[edge] = (
            report.retries_by_edge.get(edge, 0) + count
        )
    for edge, count in stats.redelivered_by_edge.items():
        report.redelivered_by_edge[edge] = (
            report.redelivered_by_edge.get(edge, 0) + count
        )


def critical_path_seconds(program: TransferProgram,
                          report: ExecutionReport) -> float:
    """Longest compute+ship chain through the DAG, from measured times.

    Per-operation seconds come from the report's timings (matched by
    ``op_id``); a cross-edge adds its recorded shipment seconds.  This
    is the lower bound on the makespan of any parallel schedule.
    """
    seconds_by_op = {
        timing.op_id: timing.seconds for timing in report.op_timings
    }
    finish: dict[int, float] = {}
    for node in program.topological_order():
        arrival = 0.0
        for edge in program.in_edges(node):
            key = (edge.producer.op_id, edge.output_index)
            arrival = max(
                arrival,
                finish.get(edge.producer.op_id, 0.0)
                + report.shipment_seconds.get(key, 0.0),
            )
        finish[node.op_id] = arrival + seconds_by_op.get(node.op_id, 0.0)
    return max(finish.values(), default=0.0)
