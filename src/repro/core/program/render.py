"""Render transfer programs as text (Figures 3–6, 8 style) or DOT."""

from __future__ import annotations

from repro.core.ops.base import Operation
from repro.core.program.dag import TransferProgram


def _annotated(node: Operation) -> str:
    if node.location is not None:
        return f"{node.label()}@{node.location.value}"
    return node.label()


def to_text(program: TransferProgram) -> str:
    """One line per data-flow edge, in topological order of producers.

    Example output (compare Figure 5)::

        Scan(Customer) --> Write(Customer)
        Scan(Order) --> Combine(Order, Service)
        Scan(Service) --> Combine(Order, Service)
        Combine(Order, Service) --> Write(Order_Service)
    """
    order = {
        node.op_id: position
        for position, node in enumerate(program.topological_order())
    }
    lines = [
        f"{_annotated(edge.producer)} --> {_annotated(edge.consumer)}"
        for edge in sorted(
            program.edges,
            key=lambda edge: (
                order[edge.producer.op_id], order[edge.consumer.op_id],
                edge.output_index,
            ),
        )
    ]
    isolated = [
        node for node in program.nodes
        if not program.in_edges(node) and not program.out_edges(node)
    ]
    lines.extend(_annotated(node) for node in isolated)
    return "\n".join(lines)


def to_dot(program: TransferProgram) -> str:
    """Graphviz DOT rendering (nodes shaded by location)."""
    lines = ["digraph transfer {", "  rankdir=LR;"]
    for node in program.nodes:
        fill = {
            "S": "lightblue",
            "T": "lightsalmon",
        }.get(node.location.value if node.location else "", "white")
        lines.append(
            f'  n{node.op_id} [label="{node.label()}", shape=box, '
            f'style=filled, fillcolor={fill}];'
        )
    for edge in program.edges:
        cross = (
            edge.producer.location is not None
            and edge.consumer.location is not None
            and edge.producer.location is not edge.consumer.location
        )
        style = ' [style=dashed, label="ship"]' if cross else ""
        lines.append(
            f"  n{edge.producer.op_id} -> n{edge.consumer.op_id}{style};"
        )
    lines.append("}")
    return "\n".join(lines)


def summary(program: TransferProgram) -> str:
    """Counts by operation kind, e.g. ``scan=5 combine=4 split=0 write=4``."""
    counts: dict[str, int] = {}
    for node in program.nodes:
        counts[node.kind] = counts.get(node.kind, 0) + 1
    return " ".join(
        f"{kind}={counts.get(kind, 0)}"
        for kind in ("scan", "combine", "split", "write")
    )
