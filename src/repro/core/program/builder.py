"""Program generation (Section 4.2).

Construction proceeds exactly as the paper describes:

* **G0** — a ``Scan`` per source fragment, a ``Write`` per target
  fragment, and a cross-edge between a Scan and a Write operating on the
  same fragment;
* **G1** — add ``Split`` operations for source fragments that feed
  several target fragments (Figure 6), wiring split outputs straight to
  Writes where a piece *is* a target fragment;
* **completion** — for every Write still dangling, a series of pair-wise
  ``Combine`` operations assembles its input.  Each combine order gives a
  different program instance G; orders are constrained by the schema
  tree (only parent/child-related pieces combine), which keeps the
  search space far smaller than relational join ordering.

:func:`build_transfer_program` produces one program with a deterministic
("canonical") or caller-supplied combine order;
:func:`enumerate_transfer_programs` lazily enumerates all structurally
distinct orders, which the exhaustive optimizer feeds to
``Cost_Based_Optim``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.errors import ProgramError
from repro.core.fragment import Fragment
from repro.core.mapping import Mapping
from repro.core.ops.base import Operation
from repro.core.ops.combine import Combine
from repro.core.ops.scan import Scan
from repro.core.ops.split import Split
from repro.core.ops.write import Write
from repro.core.program.dag import TransferProgram

#: A producer port: (operation, output index).
Port = tuple[Operation, int]

#: One pair-wise merge in an assembly: indices into the growing item
#: list (items beyond the initial pieces are combine results).
MergeStep = tuple[int, int]

#: Chooses the next merge given the active (index, fragment) items;
#: used by the greedy optimizer to order combines by estimated cost.
OrderPolicy = Callable[[list[tuple[int, Fragment]]], MergeStep]


@dataclass(slots=True)
class Assembly:
    """A dangling Write and the piece ports that must be combined."""

    target: Fragment
    ports: list[Port]

    @property
    def fragments(self) -> list[Fragment]:
        """The piece fragments, in port order."""
        return [port[0].outputs[port[1]] for port in self.ports]


class ProgramBuilder:
    """Builds transfer programs for one mapping."""

    def __init__(self, mapping: Mapping) -> None:
        self.mapping = mapping
        self.schema = mapping.source.schema
        self._preorder = {
            name: index
            for index, name in enumerate(self.schema.element_names())
        }

    # -- skeleton (G0 + splits = G1) -------------------------------------------

    def skeleton(self) -> tuple[TransferProgram, list[Assembly]]:
        """Build G1 and report the dangling Writes with their pieces."""
        program = TransferProgram()
        scans: dict[str, Scan] = {}
        for source_fragment in self.mapping.source:
            scans[source_fragment.name] = program.add(Scan(source_fragment))

        split_requirements = self.mapping.split_requirements()
        piece_ports: dict[tuple[str, frozenset[str]], Port] = {}
        for source_name, parts in split_requirements.items():
            source_fragment = self.mapping.source.fragment(source_name)
            ordered_parts = sorted(parts, key=self._part_sort_key)
            pieces = source_fragment.split_into(ordered_parts)
            split = program.add(Split(source_fragment, pieces))
            program.connect(scans[source_name], 0, split, 0)
            for index, piece in enumerate(pieces):
                piece_ports[(source_name, piece.elements)] = (split, index)

        assemblies: list[Assembly] = []
        for entry in self.mapping.entries:
            write = program.add(Write(entry.target))
            ports: list[Port] = []
            for source_fragment in entry.sources:
                contribution = entry.contributions[source_fragment.name]
                if source_fragment.name in split_requirements:
                    port = piece_ports[
                        (source_fragment.name, contribution)
                    ]
                else:
                    port = (scans[source_fragment.name], 0)
                ports.append(port)
            if (len(ports) == 1
                    and ports[0][0].outputs[ports[0][1]].elements
                    == entry.target.elements):
                program.connect(ports[0][0], ports[0][1], write, 0)
            else:
                assemblies.append(Assembly(entry.target, ports))
        return program, assemblies

    def _part_sort_key(self, part: frozenset[str]) -> tuple[int, int]:
        top = self.schema.top_of(part)
        return (self.schema.depth(top), self._preorder[top])

    # -- combine ordering ---------------------------------------------------------

    def canonical_steps(self, fragments: Sequence[Fragment]
                        ) -> list[MergeStep]:
        """A deterministic order: inline the deepest-rooted piece into
        the active item that contains its parent element, repeatedly.

        Deepest-first processing guarantees that when a piece's turn
        comes, the active item rooted at that piece's root (the piece
        itself, possibly grown by earlier merges) is still active.
        """
        covered: set[str] = set()
        for fragment in fragments:
            covered |= fragment.elements
        items: list[Fragment] = list(fragments)
        active = set(range(len(items)))
        pending_roots = sorted(
            (fragment.root_name for fragment in fragments
             if fragment.parent_element() in covered),
            key=lambda root: (
                -self.schema.depth(root), self._preorder[root]
            ),
        )
        steps: list[MergeStep] = []
        for root in pending_roots:
            child_index = next(
                index for index in sorted(active)
                if items[index].root_name == root
            )
            parent_element = items[child_index].parent_element()
            owner = next(
                index for index in sorted(active)
                if index != child_index
                and parent_element in items[index].elements
            )
            merged = items[owner].combined_with(items[child_index])
            items.append(merged)
            active.discard(owner)
            active.discard(child_index)
            steps.append((owner, child_index))
            active.add(len(items) - 1)
        if len(active) != 1:
            raise ProgramError(
                "combine ordering failed to assemble a single fragment"
            )
        return steps

    def policy_steps(self, fragments: Sequence[Fragment],
                     policy: OrderPolicy) -> list[MergeStep]:
        """Order combines by repeatedly asking ``policy`` for the next
        merge among the currently active items (greedy ordering hook,
        Section 4.3)."""
        items: list[Fragment] = list(fragments)
        active = list(range(len(items)))
        steps: list[MergeStep] = []
        while len(active) > 1:
            snapshot = [(index, items[index]) for index in active]
            parent_index, child_index = policy(snapshot)
            merged = items[parent_index].combined_with(items[child_index])
            items.append(merged)
            active = [
                index for index in active
                if index not in (parent_index, child_index)
            ]
            active.append(len(items) - 1)
            steps.append((parent_index, child_index))
        return steps

    def all_merge_orders(self, fragments: Sequence[Fragment]
                         ) -> Iterator[tuple[MergeStep, ...]]:
        """Enumerate structurally distinct merge sequences.

        Two sequences producing the same *set* of combine nodes (the
        same DAG up to the irrelevant interleaving of independent
        merges) are yielded once.
        """
        seen: set[frozenset[tuple[frozenset[str], frozenset[str]]]] = set()
        items: list[Fragment] = list(fragments)

        def recurse(active: list[int], acc: list[MergeStep]
                    ) -> Iterator[tuple[MergeStep, ...]]:
            if len(active) == 1:
                key = frozenset(
                    (items[i].elements, items[j].elements) for i, j in acc
                )
                if key not in seen:
                    seen.add(key)
                    yield tuple(acc)
                return
            for parent_index in active:
                for child_index in active:
                    if parent_index == child_index:
                        continue
                    parent_item = items[parent_index]
                    child_item = items[child_index]
                    if not parent_item.can_combine(child_item):
                        continue
                    items.append(parent_item.combined_with(child_item))
                    acc.append((parent_index, child_index))
                    next_active = [
                        index for index in active
                        if index not in (parent_index, child_index)
                    ]
                    next_active.append(len(items) - 1)
                    yield from recurse(next_active, acc)
                    acc.pop()
                    items.pop()

        yield from recurse(list(range(len(fragments))), [])

    # -- materialization ------------------------------------------------------------

    def materialize(self, orders: dict[str, Sequence[MergeStep]]
                    ) -> TransferProgram:
        """Build a complete program applying the given merge order per
        dangling target fragment (keyed by target fragment name)."""
        program, assemblies = self.skeleton()
        for assembly in assemblies:
            steps = orders[assembly.target.name]
            ports: list[Port] = list(assembly.ports)
            fragments: list[Fragment] = assembly.fragments
            for parent_index, child_index in steps:
                combine = program.add(
                    Combine(fragments[parent_index], fragments[child_index])
                )
                parent_port = ports[parent_index]
                child_port = ports[child_index]
                program.connect(parent_port[0], parent_port[1], combine, 0)
                program.connect(child_port[0], child_port[1], combine, 1)
                ports.append((combine, 0))
                fragments.append(combine.result)
            final_port = ports[-1] if steps else ports[0]
            write = self._write_for(program, assembly.target)
            program.connect(final_port[0], final_port[1], write, 0)
        program.validate()
        return program

    def _write_for(self, program: TransferProgram,
                   target: Fragment) -> Write:
        for node in program.writes():
            if node.fragment.elements == target.elements:
                return node
        raise ProgramError(f"no Write node for target {target.name!r}")

    # -- public entry points ------------------------------------------------------------

    def build(self, policy: OrderPolicy | None = None) -> TransferProgram:
        """Build one complete program (canonical order, or ``policy``)."""
        _, assemblies = self.skeleton()
        orders: dict[str, Sequence[MergeStep]] = {}
        for assembly in assemblies:
            if policy is None:
                orders[assembly.target.name] = self.canonical_steps(
                    assembly.fragments
                )
            else:
                orders[assembly.target.name] = self.policy_steps(
                    assembly.fragments, policy
                )
        return self.materialize(orders)

    def enumerate(self, limit: int | None = None
                  ) -> Iterator[TransferProgram]:
        """Lazily enumerate programs over combine orders (cartesian
        across dangling targets), up to ``limit`` programs.

        When a limit is set, each target's order enumeration is also
        capped at ``limit`` — per-target order counts are factorial in
        the number of pieces, so unbounded materialization of one
        target's orders would defeat the cap (the paper's observation
        that exhaustive generation is impractical beyond ~40 nodes).
        """
        _, assemblies = self.skeleton()
        if not assemblies:
            yield self.materialize({})
            return
        per_target = [
            list(itertools.islice(
                self.all_merge_orders(assembly.fragments), limit
            ))
            for assembly in assemblies
        ]
        names = [assembly.target.name for assembly in assemblies]
        count = 0
        for combination in itertools.product(*per_target):
            yield self.materialize(dict(zip(names, combination)))
            count += 1
            if limit is not None and count >= limit:
                return


def build_transfer_program(mapping: Mapping,
                           policy: OrderPolicy | None = None
                           ) -> TransferProgram:
    """Convenience wrapper: one program for ``mapping``."""
    return ProgramBuilder(mapping).build(policy)


def enumerate_transfer_programs(mapping: Mapping, limit: int | None = None
                                ) -> Iterator[TransferProgram]:
    """Convenience wrapper: enumerate programs for ``mapping``."""
    return ProgramBuilder(mapping).enumerate(limit)
