"""Exchange checkpointing: resume a killed run where it stopped.

An :class:`ExchangeJournal` is an append-only acknowledgement log kept
by the executors while a program runs.  Two grain sizes:

* **whole writes** — every executor acks a Write operation once its
  fragment is fully stored.  A resumed run skips the entire producer
  chain of an acked write (nothing is recomputed or re-shipped).
* **batches** — under the streaming dataplane, writes into endpoints
  that load incrementally (``incremental_writes = True``, e.g. the
  relational endpoint's per-batch bulk load) additionally ack each
  stored batch by sequence number.  A resumed run replays the stream
  but suppresses shipping and re-loading through the acknowledged
  high-water mark, so only unacknowledged batches cross the wire
  again.

The journal is JSON-lines on disk (or purely in memory with
``path=None``): one ``run`` record per attempt, one ``batch``/``write``
record per acknowledgement.  Records are flushed as written — a killed
process loses at most the batch in flight, which was by definition not
yet acknowledged and is re-shipped on resume.  ``resume_count`` (runs
beyond the first) surfaces in ``ExecutionReport``/``ExchangeOutcome``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO


class ExchangeJournal:
    """Append-only acknowledgement log for one exchange.

    Thread-safe: the parallel executors ack from worker threads.  Keys
    identify Write operations stably across runs (the executors use
    ``"<op_id>:<fragment name>"``), so a fresh process replaying the
    same program resolves its acknowledgements.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._runs = 0
        self._batch_high: dict[str, int] = {}
        self._writes_done: set[str] = set()
        self._sync_version = 0
        self._file: IO[str] | None = None
        if self.path is not None and self.path.exists():
            self._load()
        if self.path is not None:
            self._file = self.path.open("a", encoding="utf-8")

    # -- persistence -------------------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        raw = self.path.read_text(encoding="utf-8")
        good_end = 0
        offset = 0
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            if stripped:
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError:
                    # A record torn mid-write by a kill — exactly the
                    # crash the journal exists to survive.  Only the
                    # final line can legally be torn: everything after
                    # a defect is unparseable territory, so stop here
                    # and truncate the tail before appending resumes.
                    break
                self._apply(record)
            offset += len(line)
            good_end = offset
        if good_end < len(raw):
            with self.path.open("r+", encoding="utf-8") as handle:
                handle.truncate(good_end)

    def _apply(self, record: dict[str, object]) -> None:
        event = record.get("event")
        if event == "run":
            self._runs += 1
        elif event == "batch":
            key = str(record["write"])
            seq = int(record["seq"])  # type: ignore[arg-type]
            if seq > self._batch_high.get(key, -1):
                self._batch_high[key] = seq
        elif event == "write":
            self._writes_done.add(str(record["write"]))
        elif event == "sync":
            version = int(record["version"])  # type: ignore[arg-type]
            if version > self._sync_version:
                self._sync_version = version
            # A sync closes the exchange: earlier acknowledgements
            # belong to the completed run and must not short-circuit
            # the next one.
            self._runs = 0
            self._batch_high.clear()
            self._writes_done.clear()

    def _append(self, record: dict[str, object]) -> None:
        if self._file is None:
            return
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def close(self) -> None:
        """Close the backing file (the journal stays readable)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "ExchangeJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- run lifecycle -----------------------------------------------------------

    def begin_run(self) -> int:
        """Record the start of one execution attempt.

        Returns the attempt's ``resume_count`` — 0 for a fresh journal,
        ``n`` when ``n`` earlier attempts are already on record.
        """
        with self._lock:
            resumes = self._runs
            self._runs += 1
            self._append({"event": "run"})
            return resumes

    @property
    def resume_count(self) -> int:
        """Attempts beyond the first recorded in this journal."""
        return max(0, self._runs - 1)

    # -- acknowledgements ---------------------------------------------------------

    def ack_batch(self, write_key: str, seq: int) -> None:
        """Acknowledge batch ``seq`` of ``write_key`` as durably
        stored."""
        with self._lock:
            if seq > self._batch_high.get(write_key, -1):
                self._batch_high[write_key] = seq
            self._append(
                {"event": "batch", "write": write_key, "seq": seq}
            )

    def acked_through(self, write_key: str) -> int:
        """Highest acknowledged batch seq for ``write_key`` (-1 when
        none)."""
        with self._lock:
            return self._batch_high.get(write_key, -1)

    def ack_write(self, write_key: str) -> None:
        """Acknowledge ``write_key`` as completely stored."""
        with self._lock:
            self._writes_done.add(write_key)
            self._append({"event": "write", "write": write_key})

    def write_done(self, write_key: str) -> bool:
        """Whether ``write_key`` finished in an earlier attempt."""
        with self._lock:
            return write_key in self._writes_done

    # -- delta high-water ---------------------------------------------------------

    def record_sync(self, version: int) -> None:
        """Record that the target is fully synchronized with the source
        as of source ``version``.

        Delta exchange writes this only **after** an exchange completes,
        so a killed run never advances the high-water mark: the resumed
        (or next delta) run re-covers everything since the last finished
        sync.
        """
        with self._lock:
            if version > self._sync_version:
                self._sync_version = version
            # Close the run: the next exchange through this journal
            # starts with a clean acknowledgement slate (and a fresh
            # resume count).
            self._runs = 0
            self._batch_high.clear()
            self._writes_done.clear()
            self._append({"event": "sync", "version": version})

    def last_sync_version(self) -> int:
        """Source version of the last *completed* exchange (0 when no
        sync is on record — the next delta run ships everything)."""
        with self._lock:
            return self._sync_version


def write_key(op_id: int, fragment_name: str) -> str:
    """Stable journal key for a Write operation."""
    return f"{op_id}:{fragment_name}"
