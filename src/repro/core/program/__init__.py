"""Data-transfer programs (Definition 3.10) and their generation.

A program is a DAG whose nodes are primitive operations and whose edges
describe data flow.  :mod:`repro.core.program.dag` is the graph model,
:mod:`repro.core.program.builder` implements the G0 → G1 → completed
program construction of Section 4.2 (including combine-order
enumeration), :mod:`repro.core.program.executor` runs placed programs
against system endpoints, and :mod:`repro.core.program.render` prints
programs in the style of Figures 3–6 and 8.
"""

from repro.core.program.builder import (
    ProgramBuilder,
    build_transfer_program,
    enumerate_transfer_programs,
)
from repro.core.program.dag import Edge, TransferProgram
from repro.core.program.executor import (
    ExecutionReport,
    ProgramExecutor,
    critical_path_seconds,
)
from repro.core.program.parallel import (
    ParallelEstimate,
    partition_expressions,
    simulate_parallel_makespan,
)
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.core.program.serialize import (
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)
from repro.core.program.render import to_dot, to_text

__all__ = [
    "Edge",
    "TransferProgram",
    "ProgramBuilder",
    "build_transfer_program",
    "enumerate_transfer_programs",
    "ProgramExecutor",
    "ParallelProgramExecutor",
    "critical_path_seconds",
    "ParallelEstimate",
    "partition_expressions",
    "simulate_parallel_makespan",
    "program_to_dict",
    "program_from_dict",
    "program_to_json",
    "program_from_json",
    "ExecutionReport",
    "to_text",
    "to_dot",
]
