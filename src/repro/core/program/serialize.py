"""Serialize transfer programs for assignment (Figure 2, step 4).

The discovery agency "assigns operations to the source and the target
that generate and execute code on their internal data structures" — in
a deployment, the placed program must travel from the middleware to the
endpoints.  This module provides a stable JSON-able representation:

* fragments by (name, sorted element list) — resolved against the
  agreed schema at load time, so both sides only need the schema;
* operations by kind + fragment references + location;
* edges by node index and port numbers.

Round-tripping re-validates everything: fragment element sets must form
legal fragments, programs must validate, placements must be legal.
"""

from __future__ import annotations

import json

from repro.errors import ProgramError
from repro.core.fragment import Fragment
from repro.core.ops.base import Location
from repro.core.ops.combine import Combine
from repro.core.ops.scan import Scan
from repro.core.ops.split import Split
from repro.core.ops.write import Write
from repro.core.program.dag import Placement, TransferProgram
from repro.schema.model import SchemaTree

FORMAT_VERSION = 1


def _fragment_to_dict(fragment: Fragment) -> dict:
    return {
        "name": fragment.name,
        "elements": sorted(fragment.elements),
    }


def _fragment_from_dict(data: dict, schema: SchemaTree) -> Fragment:
    return Fragment(schema, data["elements"], data["name"])


def program_to_dict(program: TransferProgram,
                    placement: Placement | None = None) -> dict:
    """Encode a program (and optional placement) as plain data."""
    program.validate()
    index_of = {
        node.op_id: index for index, node in enumerate(program.nodes)
    }
    nodes = []
    for node in program.nodes:
        entry: dict = {"kind": node.kind}
        if isinstance(node, (Scan, Write)):
            entry["fragment"] = _fragment_to_dict(node.inputs[0])
        elif isinstance(node, Combine):
            entry["parent"] = _fragment_to_dict(node.parent_fragment)
            entry["child"] = _fragment_to_dict(node.child_fragment)
            entry["result_name"] = node.result.name
        elif isinstance(node, Split):
            entry["fragment"] = _fragment_to_dict(node.fragment)
            entry["pieces"] = [
                _fragment_to_dict(piece) for piece in node.pieces
            ]
        else:  # pragma: no cover - the four kinds are exhaustive
            raise ProgramError(f"cannot serialize {node!r}")
        if placement is not None:
            entry["location"] = placement[node.op_id].value
        nodes.append(entry)
    edges = [
        {
            "producer": index_of[edge.producer.op_id],
            "output": edge.output_index,
            "consumer": index_of[edge.consumer.op_id],
            "input": edge.input_index,
        }
        for edge in program.edges
    ]
    return {"version": FORMAT_VERSION, "nodes": nodes, "edges": edges}


def program_from_dict(data: dict, schema: SchemaTree
                      ) -> tuple[TransferProgram, Placement | None]:
    """Decode a program against the agreed schema.

    Returns the program and its placement (``None`` if the encoding
    carried no locations).

    Raises:
        ProgramError: on version/kind mismatches or structural
            problems (including anything the program validator or the
            Fragment constructor rejects).
    """
    if data.get("version") != FORMAT_VERSION:
        raise ProgramError(
            f"unsupported program format version {data.get('version')!r}"
        )
    program = TransferProgram()
    placement: Placement = {}
    has_locations = False
    nodes = []
    for entry in data["nodes"]:
        kind = entry.get("kind")
        if kind == "scan":
            node = Scan(_fragment_from_dict(entry["fragment"], schema))
        elif kind == "write":
            node = Write(
                _fragment_from_dict(entry["fragment"], schema)
            )
        elif kind == "combine":
            node = Combine(
                _fragment_from_dict(entry["parent"], schema),
                _fragment_from_dict(entry["child"], schema),
            )
        elif kind == "split":
            node = Split(
                _fragment_from_dict(entry["fragment"], schema),
                [
                    _fragment_from_dict(piece, schema)
                    for piece in entry["pieces"]
                ],
            )
        else:
            raise ProgramError(f"unknown operation kind {kind!r}")
        program.add(node)
        nodes.append(node)
        if "location" in entry:
            has_locations = True
            placement[node.op_id] = Location(entry["location"])
    for edge in data["edges"]:
        program.connect(
            nodes[edge["producer"]], edge["output"],
            nodes[edge["consumer"]], edge["input"],
        )
    program.validate()
    if has_locations:
        program.validate_placement(placement)
        return program, placement
    return program, None


def program_to_json(program: TransferProgram,
                    placement: Placement | None = None,
                    indent: int | None = None) -> str:
    """JSON string form of :func:`program_to_dict`."""
    return json.dumps(
        program_to_dict(program, placement), indent=indent
    )


def program_from_json(text: str, schema: SchemaTree
                      ) -> tuple[TransferProgram, Placement | None]:
    """Inverse of :func:`program_to_json`."""
    return program_from_dict(json.loads(text), schema)
