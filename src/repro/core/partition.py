"""Horizontal partitioning of fragment instances into K shards.

The paper exchanges one document between one source and one target; a
production deployment spreads that work over K concurrent sessions by
cutting the fragment instances *horizontally*: each shard receives a
disjoint subset of the occurrences of a repeated **grain** element
(``item``, ``category``, ...) together with everything below them, and
a replica of the small **spine** above them, so every shard is a
self-contained exchange whose ``PARENT`` references all resolve
shard-locally.  Prefix-based labeling annotation for XML fragmentation
grounds the second strategy: Dewey-style prefix labels computed from
the spine give every grain occurrence a cheap, order-preserving shard
key without consulting global state.

Two row-to-shard strategies are provided:

* ``"key-range"`` — grain occurrences are sorted by their element id
  (document order, since ids are assigned in document order) and cut
  into K contiguous ranges; and
* ``"prefix-label"`` — grain occurrences are sorted by their Dewey
  prefix label and dealt round-robin, which balances spatially
  clustered subtrees across shards.

Both are loss- and duplication-free: every row of every shardable
fragment lands in exactly one shard (the property tests verify this),
and spine replication is tracked separately so byte accounting can
charge it honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ShardingError
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData, FragmentInstance

#: The row-to-shard assignment strategies :func:`assign_shards` accepts.
STRATEGIES = ("key-range", "prefix-label")


@dataclass(frozen=True, slots=True)
class GrainPlan:
    """The schema-level shape of one sharding: which elements are the
    partition grain, which source fragments shard, which replicate.

    ``grains`` are repeated elements that root a source fragment; a
    source fragment is *sharded* iff its root element is a
    descendant-or-self of a grain, and *spine* otherwise (the spine is
    replicated into every shard so combines above the grain keep their
    anchors).  Validity against the target fragmentation is checked at
    resolution time: no target fragment may mix spine elements with
    grain-subtree elements, or gathering would have to re-assemble
    subtrees the shards cut apart.
    """

    grains: tuple[str, ...]
    sharded: frozenset[str]
    spine: frozenset[str]


def _grain_of(schema, element: str, grains: Sequence[str]) -> str | None:
    """The grain whose subtree contains ``element`` (or ``None``)."""
    for grain in grains:
        if element == grain or schema.is_ancestor(grain, element):
            return grain
    return None


def resolve_grains(source: Fragmentation, target: Fragmentation,
                   grains: Sequence[str] | None = None) -> GrainPlan:
    """Choose (or validate) the grain elements for one exchange pair.

    Auto-selection picks every *maximal* repeated element that roots a
    source fragment — maximal meaning no other candidate is a strict
    ancestor, so a grain occurrence is never nested inside another
    grain's subtree — then drops candidates the target fragmentation
    would re-assemble.  Explicit ``grains`` are validated under the
    same rules but never silently dropped.

    Raises:
        ShardingError: when no valid grain remains (explicit or
            automatic), when an explicit grain is not a repeated source
            fragment root, or when the target fragmentation mixes
            spine and grain-subtree elements.
    """
    schema = source.schema
    source_roots = {fragment.root_name for fragment in source}
    explicit = grains is not None
    if explicit:
        candidates = list(dict.fromkeys(grains))
        for grain in candidates:
            if grain not in schema:
                raise ShardingError(
                    f"grain element {grain!r} is not in the schema"
                )
            if grain not in source_roots:
                raise ShardingError(
                    f"grain element {grain!r} does not root a fragment "
                    f"of source fragmentation {source.name!r}; sharding "
                    "cuts at source fragment boundaries"
                )
            if not schema.node(grain).cardinality.repeated:
                raise ShardingError(
                    f"grain element {grain!r} is not repeated; a "
                    "non-repeated element has at most one occurrence "
                    "per parent and cannot spread over shards"
                )
    else:
        candidates = [
            root for root in sorted(
                source_roots, key=lambda name: schema.depth(name)
            )
            if schema.node(root).cardinality.repeated
        ]
    # Keep only maximal candidates: a grain nested under another grain
    # would make its occurrences belong to two shard keys at once.
    maximal = [
        grain for grain in candidates
        if not any(
            other != grain and schema.is_ancestor(other, grain)
            for other in candidates
        )
    ]
    if explicit and len(maximal) != len(candidates):
        nested = sorted(set(candidates) - set(maximal))
        raise ShardingError(
            f"grain elements {nested} are nested under other grains; "
            "grains must be ancestor-free"
        )

    def target_conflicts(selected: Sequence[str]) -> list[str]:
        conflicts = []
        for fragment in target:
            membership = {
                _grain_of(schema, element, selected) is not None
                for element in fragment.elements
            }
            if membership == {True, False}:
                conflicts.append(fragment.name)
        return conflicts

    if explicit:
        conflicts = target_conflicts(maximal)
        if conflicts:
            raise ShardingError(
                f"target fragmentation {target.name!r} fragments "
                f"{conflicts} mix grain-subtree and spine elements; "
                "gathering such shards would have to re-assemble the "
                "subtrees the partition cut apart"
            )
        selected = maximal
    else:
        # Drop candidates whose subtree some target fragment straddles.
        selected = list(maximal)
        for fragment in target:
            straddled = {
                grain
                for element in fragment.elements
                for grain in [_grain_of(schema, element, selected)]
                if grain is not None
            }
            if straddled and any(
                _grain_of(schema, element, selected) is None
                for element in fragment.elements
            ):
                selected = [
                    grain for grain in selected
                    if grain not in straddled
                ]
        if not selected:
            raise ShardingError(
                f"no shardable grain between {source.name!r} and "
                f"{target.name!r}: every repeated source fragment root "
                "is re-assembled by the target fragmentation"
            )
    sharded = frozenset(
        fragment.name for fragment in source
        if _grain_of(schema, fragment.root_name, selected) is not None
    )
    spine = frozenset(
        fragment.name for fragment in source
        if fragment.name not in sharded
    )
    return GrainPlan(tuple(selected), sharded, spine)


def prefix_labels(instances: Mapping[str, FragmentInstance],
                  fragmentation: Fragmentation,
                  plan: GrainPlan) -> dict[int, tuple[int, ...]]:
    """Dewey-style prefix labels for the spine and the grain rows.

    Every occurrence inside a spine row gets the label of its parent
    occurrence extended by its position among that parent's children
    (schema order, groups concatenated); a grain row's label extends
    its PARENT occurrence's label by the row's rank among siblings.
    Labels are lexicographically ordered in document order, and a
    label is a prefix of exactly the labels in its subtree — the
    property the prefix-label strategy (and its tests) rely on.

    Raises:
        ShardingError: if a row references a PARENT occurrence that no
            spine row contains.
    """
    schema = fragmentation.schema
    labels: dict[int, tuple[int, ...]] = {}

    def walk(node: ElementData, label: tuple[int, ...]) -> None:
        labels[node.eid] = label
        position = 0
        for child_decl in schema.node(node.name).children:
            for child in node.children.get(child_decl.name, []):
                walk(child, label + (position,))
                position += 1

    spine_fragments = [
        fragment for fragment in fragmentation
        if fragment.name in plan.spine
    ]
    for fragment in spine_fragments:  # already in root-depth order
        instance = instances.get(fragment.name)
        if instance is None:
            continue
        ranked: dict[int | None, int] = {}
        for row in sorted(instance.rows, key=lambda row: row.eid):
            if row.parent is None:
                base: tuple[int, ...] = ()
            else:
                try:
                    base = labels[row.parent]
                except KeyError as exc:
                    raise ShardingError(
                        f"spine fragment {fragment.name!r} row "
                        f"{row.eid} references PARENT {row.parent} "
                        "which no spine row contains"
                    ) from exc
            rank = ranked.get(row.parent, 0)
            ranked[row.parent] = rank + 1
            walk(row.data, base + (rank,))
    for grain in plan.grains:
        fragment = fragmentation.fragment_of(grain)
        instance = instances.get(fragment.name)
        if instance is None:
            continue
        ranked = {}
        for row in sorted(instance.rows, key=lambda row: row.eid):
            if row.eid in labels:
                continue  # the spine walk never covers grain rows
            if row.parent is None or row.parent not in labels:
                raise ShardingError(
                    f"grain fragment {fragment.name!r} row {row.eid} "
                    f"references PARENT {row.parent} which no spine "
                    "row contains"
                )
            rank = ranked.get(row.parent, 0)
            ranked[row.parent] = rank + 1
            labels[row.eid] = labels[row.parent] + (rank,)
    return labels


@dataclass(slots=True)
class PartitionResult:
    """Bookkeeping of one :func:`assign_shards` run."""

    plan: GrainPlan
    shards: int
    strategy: str
    #: Per sharded fragment name: the shard index of each row, aligned
    #: with the instance's row order.  Spine fragments do not appear —
    #: their rows replicate everywhere.
    assignments: dict[str, list[int]] = field(default_factory=dict)
    #: Grain-row eid → prefix label (populated by the ``prefix-label``
    #: strategy; empty under ``key-range``).
    labels: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: eid → shard of every occurrence owned by a shard (grain rows and
    #: everything below them).
    owner: dict[int, int] = field(default_factory=dict)

    def rows_per_shard(self) -> list[int]:
        """Exclusive (non-replicated) row count of each shard."""
        counts = [0] * self.shards
        for assignment in self.assignments.values():
            for shard in assignment:
                counts[shard] += 1
        return counts


def assign_shards(instances: Mapping[str, FragmentInstance],
                  fragmentation: Fragmentation, plan: GrainPlan,
                  shards: int,
                  strategy: str = "key-range") -> PartitionResult:
    """Assign every row of every sharded fragment to exactly one shard.

    Grain rows are assigned by ``strategy``; rows of deeper sharded
    fragments inherit the shard of the occurrence their ``PARENT``
    references (processed in fragment-root depth order, so the owner
    map is always populated before it is consulted).

    Raises:
        ShardingError: on an unknown strategy, ``shards < 1``, or a
            row whose PARENT resolves to no sharded occurrence.
    """
    if shards < 1:
        raise ShardingError(f"shards must be >= 1, got {shards}")
    if strategy not in STRATEGIES:
        raise ShardingError(
            f"unknown sharding strategy {strategy!r}; expected one of "
            f"{STRATEGIES}"
        )
    result = PartitionResult(plan, shards, strategy)
    if strategy == "prefix-label":
        result.labels = prefix_labels(instances, fragmentation, plan)
    owner = result.owner
    grain_fragments = {
        fragmentation.fragment_of(grain).name for grain in plan.grains
    }
    for fragment in fragmentation:  # root-depth order
        if fragment.name not in plan.sharded:
            continue
        instance = instances.get(fragment.name)
        if instance is None:
            continue
        assignment = [0] * len(instance.rows)
        if fragment.name in grain_fragments:
            if strategy == "key-range":
                ordered = sorted(
                    range(len(instance.rows)),
                    key=lambda i: instance.rows[i].eid,
                )
                block = -(-len(ordered) // shards)  # ceil division
                for rank, index in enumerate(ordered):
                    assignment[index] = min(rank // block, shards - 1)
            else:
                ordered = sorted(
                    range(len(instance.rows)),
                    key=lambda i: result.labels[
                        instance.rows[i].eid
                    ],
                )
                for rank, index in enumerate(ordered):
                    assignment[index] = rank % shards
        else:
            for index, row in enumerate(instance.rows):
                key = row.parent if row.parent is not None else -1
                try:
                    assignment[index] = owner[key]
                except KeyError as exc:
                    raise ShardingError(
                        f"sharded fragment {fragment.name!r} row "
                        f"{row.eid} references PARENT {row.parent}, "
                        "which belongs to no shard — the reference "
                        "would cross a shard boundary"
                    ) from exc
        for index, row in enumerate(instance.rows):
            shard = assignment[index]
            for node in row.data.iter_all():
                owner[node.eid] = shard
        result.assignments[fragment.name] = assignment
    return result


def partition_instances(
        instances: Mapping[str, FragmentInstance],
        fragmentation: Fragmentation, plan: GrainPlan, shards: int,
        strategy: str = "key-range",
) -> tuple[list[dict[str, FragmentInstance]], PartitionResult]:
    """Cut ``instances`` into ``shards`` self-contained instance sets.

    Sharded fragments are split row-wise per the assignment (each row
    object moves to exactly one shard); spine fragments appear in every
    shard (row objects shared — endpoints deep-copy on scan, so shards
    never observe each other's mutations).  Every shard's set contains
    an entry for *every* fragment of the fragmentation, empty where the
    shard received no rows, so per-shard exchanges scan cleanly.
    """
    result = assign_shards(
        instances, fragmentation, plan, shards, strategy
    )
    shard_sets: list[dict[str, FragmentInstance]] = [
        {} for _ in range(shards)
    ]
    for fragment in fragmentation:
        instance = instances.get(fragment.name)
        rows = instance.rows if instance is not None else []
        if fragment.name in plan.spine:
            for shard_set in shard_sets:
                shard_set[fragment.name] = FragmentInstance(
                    fragment, rows
                )
            continue
        assignment = result.assignments.get(
            fragment.name, [0] * len(rows)
        )
        buckets: list[list] = [[] for _ in range(shards)]
        for row, shard in zip(rows, assignment):
            buckets[shard].append(row)
        for shard, bucket in enumerate(buckets):
            shard_sets[shard][fragment.name] = FragmentInstance(
                fragment, bucket
            )
    return shard_sets, result
