"""Mappings between fragmentations (Definition 3.5).

A mapping ``(XMLSchema, S, T, M)`` associates each target fragment with
the source fragments whose elements it draws from.  Because valid
fragmentations partition the schema's elements, the mapping is fully
determined by element coverage; :func:`derive_mapping` computes it, along
with the per-pair element intersections the program builder needs to
place ``Split`` operations (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation


@dataclass(slots=True)
class MappingEntry:
    """One target fragment and the source fragments that feed it."""

    target: Fragment
    sources: list[Fragment]
    #: For each source fragment name, the elements of `target` that the
    #: source contributes (a connected subtree, see DESIGN.md).
    contributions: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def is_identity(self) -> bool:
        """True if one source fragment equals the target exactly —
        the Scan → Write fast path of Section 5.2."""
        return (
            len(self.sources) == 1
            and self.sources[0].elements == self.target.elements
        )


@dataclass(slots=True)
class Mapping:
    """The full mapping ``M`` from target fragments to source fragments."""

    source: Fragmentation
    target: Fragmentation
    entries: list[MappingEntry]

    def entry_for(self, target_name: str) -> MappingEntry:
        """Return the entry for target fragment ``target_name``.

        Raises:
            MappingError: if the target fragment is unknown.
        """
        for entry in self.entries:
            if entry.target.name == target_name:
                return entry
        raise MappingError(f"no mapping entry for target {target_name!r}")

    def split_requirements(self) -> dict[str, list[frozenset[str]]]:
        """For each source fragment that feeds several target fragments
        (or feeds one partially), the element partition it must be split
        into.  Source fragments used whole map to no requirement."""
        needed: dict[str, list[frozenset[str]]] = {}
        for source_fragment in self.source:
            parts = [
                entry.contributions[source_fragment.name]
                for entry in self.entries
                if source_fragment.name in entry.contributions
            ]
            if len(parts) > 1 or (
                parts and parts[0] != source_fragment.elements
            ):
                needed[source_fragment.name] = parts
        return needed


def derive_mapping(source: Fragmentation, target: Fragmentation) -> Mapping:
    """Compute the mapping between two fragmentations of the same schema.

    Raises:
        MappingError: if the fragmentations are over different schemas.
    """
    if not source.schema.structurally_equal(target.schema):
        # Remote systems re-parse the agreed schema document, so the
        # two fragmentations may arrive over distinct but structurally
        # identical SchemaTree objects (same canonical fingerprint);
        # those are one schema for mapping purposes, exactly as
        # DiscoveryAgency.register accepts them.
        raise MappingError(
            "source and target fragmentations must share one schema "
            f"({source.name!r} vs {target.name!r})"
        )
    entries: list[MappingEntry] = []
    for target_fragment in target:
        sources: list[Fragment] = []
        contributions: dict[str, frozenset[str]] = {}
        for source_fragment in source:
            overlap = target_fragment.elements & source_fragment.elements
            if overlap:
                sources.append(source_fragment)
                contributions[source_fragment.name] = frozenset(overlap)
        entries.append(
            MappingEntry(target_fragment, sources, contributions)
        )
    return Mapping(source, target, entries)
