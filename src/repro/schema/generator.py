"""Random schema-tree generators for the simulation study (Section 5.4).

The paper evaluates on synthetic DTDs: a balanced tree with 3 levels and
fan-out 4 (Figures 10/11) and balanced trees of height 2 with fan-out 5,
i.e. 31 nodes (Table 5).  :func:`balanced_schema` builds exactly those;
:func:`random_schema` grows irregular trees for wider test coverage.
"""

from __future__ import annotations

import random

from repro.schema.model import Cardinality, SchemaNode, SchemaTree

_CARDINALITIES = [
    Cardinality.ONE,
    Cardinality.MANY,
    Cardinality.PLUS,
    Cardinality.OPT,
]


def balanced_schema(levels: int, fanout: int, *, repeat_prob: float = 0.3,
                    seed: int = 0, prefix: str = "e") -> SchemaTree:
    """Build a balanced schema tree.

    Args:
        levels: number of levels *below* the root (height of the tree);
            ``levels=2, fanout=5`` gives the paper's 31-node DTDs.
        fanout: children per internal node.
        repeat_prob: probability that a non-root element is repeated
            (``*``); the paper's generator does not specify this, so it
            is a seeded knob.
        seed: RNG seed for cardinality choices (deterministic).
        prefix: element name prefix (names are ``{prefix}{counter}``).
    """
    rng = random.Random(seed)
    counter = 0

    def fresh_name() -> str:
        nonlocal counter
        name = f"{prefix}{counter}"
        counter += 1
        return name

    def build(depth: int) -> SchemaNode:
        cardinality = Cardinality.ONE
        if depth > 0 and rng.random() < repeat_prob:
            cardinality = Cardinality.MANY
        node = SchemaNode(fresh_name(), cardinality)
        if depth < levels:
            node.children = [build(depth + 1) for _ in range(fanout)]
        return node

    return SchemaTree(build(0))


def random_schema(n_nodes: int, *, max_fanout: int = 4,
                  repeat_prob: float = 0.3, seed: int = 0,
                  prefix: str = "e") -> SchemaTree:
    """Grow a random schema tree with exactly ``n_nodes`` elements.

    Nodes are attached to uniformly chosen existing nodes whose fan-out
    is below ``max_fanout``; cardinalities are drawn with the given
    repeat probability.  Deterministic for a fixed seed.
    """
    if n_nodes < 1:
        raise ValueError("a schema tree needs at least one element")
    rng = random.Random(seed)
    root = SchemaNode(f"{prefix}0")
    open_nodes = [root]
    for index in range(1, n_nodes):
        parent = rng.choice(open_nodes)
        cardinality = (
            Cardinality.MANY if rng.random() < repeat_prob
            else Cardinality.ONE
        )
        child = SchemaNode(f"{prefix}{index}", cardinality)
        parent.children.append(child)
        if len(parent.children) >= max_fanout:
            open_nodes.remove(parent)
        open_nodes.append(child)
    return SchemaTree(root)
