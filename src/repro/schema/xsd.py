"""Parse the WSDL-embedded XML Schema dialect into schema trees.

Figure 1's WSDL carries the agreed schema as nested ``<element>``
declarations (with ``<sequence>`` wrappers, ``type="string"`` leaves,
``maxOccurs="unbounded"`` repetition and ``<attribute>`` declarations).
:func:`parse_xsd_element` turns such a declaration into a
:class:`~repro.schema.model.SchemaTree`, so a system can join an
exchange knowing only the WSDL document — no out-of-band DTD needed.

Supported subset (matching what the paper's documents use): nested
element declarations, ``sequence`` groups, ``minOccurs``/``maxOccurs``
(0/1/unbounded), string-typed leaves and attributes.  ``choice``/
``all`` groups and named type references are out of scope and raise.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.model import Cardinality, SchemaNode, SchemaTree
from repro.xmlkit.tree import Element


def _cardinality(declaration: Element) -> Cardinality:
    min_occurs = declaration.get("minOccurs", "1") or "1"
    max_occurs = declaration.get("maxOccurs", "1") or "1"
    repeated = max_occurs == "unbounded" or (
        max_occurs.isdigit() and int(max_occurs) > 1
    )
    optional = min_occurs == "0"
    if repeated:
        # WSDL's bare maxOccurs="unbounded" (Figure 1 writes no
        # minOccurs) conventionally means zero-or-more.
        return Cardinality.MANY if optional or min_occurs == "1" \
            else Cardinality.PLUS
    if optional:
        return Cardinality.OPT
    return Cardinality.ONE


def _parse_node(declaration: Element) -> SchemaNode:
    name = declaration.get("name")
    if not name:
        raise SchemaError("XSD element declaration without a name")
    node = SchemaNode(name, _cardinality(declaration))
    for child in declaration.children:
        local = child.local_name()
        if local == "attribute":
            attribute = child.get("name")
            if not attribute:
                raise SchemaError(
                    f"attribute of {name!r} has no name"
                )
            # The paper's ID/PARENT exposure belongs to fragments, not
            # to the agreed schema; skip it when round-tripping
            # fragment declarations.
            if attribute not in ("ID", "PARENT"):
                node.attributes.append(attribute)
        elif local == "sequence":
            for grandchild in child.children:
                if grandchild.local_name() == "element":
                    node.children.append(_parse_node(grandchild))
                else:
                    raise SchemaError(
                        f"unsupported construct "
                        f"<{grandchild.name}> inside sequence of "
                        f"{name!r}"
                    )
        elif local == "element":
            node.children.append(_parse_node(child))
        elif local in ("choice", "all"):
            raise SchemaError(
                f"<{local}> groups are not supported (element "
                f"{name!r})"
            )
        else:
            raise SchemaError(
                f"unsupported construct <{child.name}> in element "
                f"{name!r}"
            )
    return node


def parse_xsd_element(declaration: Element) -> SchemaTree:
    """Parse a top-level ``<element>`` declaration into a schema tree.

    Raises:
        SchemaError: on unsupported constructs or missing names.
    """
    if declaration.local_name() != "element":
        raise SchemaError(
            f"expected an <element> declaration, got "
            f"<{declaration.name}>"
        )
    root = _parse_node(declaration)
    root.cardinality = Cardinality.ONE  # documents have one root
    return SchemaTree(root)


def parse_xsd_schema(schema_element: Element) -> SchemaTree:
    """Parse a ``<schema>`` element (as embedded in WSDL ``<types>``)
    holding exactly one top-level element declaration.

    Raises:
        SchemaError: if the schema declares zero or several roots.
    """
    if schema_element.local_name() != "schema":
        raise SchemaError(
            f"expected a <schema> element, got <{schema_element.name}>"
        )
    declarations = [
        child for child in schema_element.children
        if child.local_name() == "element"
    ]
    if len(declarations) != 1:
        raise SchemaError(
            "the agreed schema must declare exactly one root element; "
            f"found {len(declarations)}"
        )
    return parse_xsd_element(declarations[0])
