"""Validate documents and fragment instances against schema trees.

The paper's systems exchange documents "that conform to the XML Schema
specified in the WSDL definition"; this module makes conformance
checkable.  Violations are collected (not raised one at a time) so a
consumer can report everything wrong with an incoming feed at once.

Checked per element occurrence:

* the element is declared, and declared *under its parent*;
* child groups respect cardinality (missing required child, repeated
  singleton child);
* children appear in schema order (no interleaving violations are
  possible in the grouped representation, so order means group order);
* only declared attributes appear;
* text only on schema leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fragment import Fragment
from repro.core.instance import ElementData, FragmentInstance
from repro.schema.model import SchemaTree


@dataclass(frozen=True, slots=True)
class Violation:
    """One conformance problem."""

    element: str
    eid: int
    message: str

    def __str__(self) -> str:
        return f"<{self.element} eid={self.eid}>: {self.message}"


def validate_document(schema: SchemaTree,
                      root: ElementData) -> list[Violation]:
    """All conformance violations of a document (empty = conforming)."""
    violations: list[Violation] = []
    if root.name != schema.root.name:
        violations.append(
            Violation(
                root.name, root.eid,
                f"root must be <{schema.root.name}>",
            )
        )
        return violations
    _validate_node(schema, root, violations)
    return violations


def _validate_node(schema: SchemaTree, node: ElementData,
                   violations: list[Violation]) -> None:
    if node.name not in schema:
        violations.append(
            Violation(node.name, node.eid, "undeclared element")
        )
        return
    declared = schema.node(node.name)
    declared_children = {child.name for child in declared.children}
    declared_attributes = set(declared.attributes)

    for attribute in node.attrs:
        if attribute not in declared_attributes:
            violations.append(
                Violation(
                    node.name, node.eid,
                    f"undeclared attribute {attribute!r}",
                )
            )
    if node.text and not declared.is_leaf:
        violations.append(
            Violation(
                node.name, node.eid,
                "text content on a non-leaf element",
            )
        )
    for child_name, group in node.children.items():
        if child_name not in declared_children:
            violations.append(
                Violation(
                    node.name, node.eid,
                    f"child <{child_name}> is not declared under "
                    f"<{node.name}>",
                )
            )
            continue
        cardinality = declared.child(child_name).cardinality
        if len(group) > 1 and not cardinality.repeated:
            violations.append(
                Violation(
                    node.name, node.eid,
                    f"child <{child_name}> occurs {len(group)} times "
                    f"but is declared {cardinality.name}",
                )
            )
        for child in group:
            _validate_node(schema, child, violations)
    for child in declared.children:
        # ONE and PLUS demand at least one occurrence.
        if not child.cardinality.optional \
                and not node.children.get(child.name):
            violations.append(
                Violation(
                    node.name, node.eid,
                    f"required child <{child.name}> is missing",
                )
            )


def validate_instance(instance: FragmentInstance) -> list[Violation]:
    """Violations of a fragment instance against its fragment.

    Rows are validated against the *pruned* subtree: elements outside
    the fragment are violations even when the schema declares them, and
    required children pruned into other fragments are not demanded.
    """
    fragment = instance.fragment
    schema = fragment.schema
    violations: list[Violation] = []
    for row in instance.rows:
        if row.data.name != fragment.root_name:
            violations.append(
                Violation(
                    row.data.name, row.data.eid,
                    f"row root must be <{fragment.root_name}>",
                )
            )
            continue
        _validate_fragment_node(fragment, schema, row.data, violations)
    return violations


def _validate_fragment_node(fragment: Fragment, schema: SchemaTree,
                            node: ElementData,
                            violations: list[Violation]) -> None:
    declared = schema.node(node.name)
    in_fragment = {
        child.name for child in fragment.children_of(node.name)
    }
    for child_name, group in node.children.items():
        if child_name not in in_fragment:
            violations.append(
                Violation(
                    node.name, node.eid,
                    f"child <{child_name}> lies outside fragment "
                    f"{fragment.name!r}",
                )
            )
            continue
        cardinality = declared.child(child_name).cardinality
        if len(group) > 1 and not cardinality.repeated:
            violations.append(
                Violation(
                    node.name, node.eid,
                    f"child <{child_name}> occurs {len(group)} times "
                    f"but is declared {cardinality.name}",
                )
            )
        for child in group:
            _validate_fragment_node(fragment, schema, child, violations)
    for child in fragment.children_of(node.name):
        if not child.cardinality.optional \
                and not node.children.get(child.name):
            violations.append(
                Violation(
                    node.name, node.eid,
                    f"required child <{child.name}> is missing",
                )
            )
