"""Schema substrate: schema trees, DTD parsing and fragment XSD syntax.

The paper views XML Schemas as trees (Section 3.1).  This package holds
the tree model (:mod:`repro.schema.model`), a DTD parser that produces
schema trees (:mod:`repro.schema.dtd`, used for the XMark workload of
Figure 7), serialization of schema fragments in the paper's XSD-like
syntax (:mod:`repro.schema.xsdfrag`) and random schema generators used by
the simulation study (:mod:`repro.schema.generator`).
"""

from repro.schema.dtd import parse_dtd
from repro.schema.generator import balanced_schema, random_schema
from repro.schema.model import Cardinality, SchemaNode, SchemaTree
from repro.schema.xsd import parse_xsd_element, parse_xsd_schema

# NOTE: repro.schema.validate is imported lazily by callers — it
# depends on repro.core.instance, and importing it here would create a
# package-level cycle (core.fragment <- schema.model).

__all__ = [
    "Cardinality",
    "SchemaNode",
    "SchemaTree",
    "parse_dtd",
    "parse_xsd_element",
    "parse_xsd_schema",
    "balanced_schema",
    "random_schema",
]
