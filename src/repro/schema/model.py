"""Schema trees: the paper's view of XML Schemas (Section 3.1).

A schema is a rooted tree of named elements.  Each element has a
cardinality *relative to its parent* (exactly-one, optional, ``*`` or
``+``), an ordered list of child elements, an optional list of attribute
names, and leaf elements carry text content in instances.

Element names are unique within a tree — the paper's validity definition
("each element in the XML Schema is defined only once", Def. 3.4) relies
on this, and both the customer schema of Section 1.1 and the XMark DTD of
Figure 7 satisfy it.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SchemaError


class Cardinality(enum.Enum):
    """How many times an element occurs under its parent."""

    ONE = ""
    OPT = "?"
    MANY = "*"
    PLUS = "+"

    @property
    def repeated(self) -> bool:
        """True for ``*`` and ``+`` (more than one occurrence allowed)."""
        return self in (Cardinality.MANY, Cardinality.PLUS)

    @property
    def optional(self) -> bool:
        """True for ``?`` and ``*`` (zero occurrences allowed)."""
        return self in (Cardinality.OPT, Cardinality.MANY)

    @classmethod
    def from_suffix(cls, suffix: str) -> "Cardinality":
        """Map a DTD occurrence suffix (``""``/``?``/``*``/``+``)."""
        for member in cls:
            if member.value == suffix:
                return member
        raise SchemaError(f"unknown occurrence suffix {suffix!r}")


@dataclass(slots=True)
class SchemaNode:
    """One element declaration in a schema tree."""

    name: str
    cardinality: Cardinality = Cardinality.ONE
    children: list["SchemaNode"] = field(default_factory=list)
    attributes: list[str] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Leaf elements carry text content in instances."""
        return not self.children

    def child(self, name: str) -> "SchemaNode":
        """Return the direct child named ``name``.

        Raises:
            SchemaError: if there is no such child.
        """
        for node in self.children:
            if node.name == name:
                return node
        raise SchemaError(f"{self.name!r} has no child element {name!r}")

    def child_index(self, name: str) -> int:
        """Return the position of child ``name`` in schema order."""
        for index, node in enumerate(self.children):
            if node.name == name:
                return index
        raise SchemaError(f"{self.name!r} has no child element {name!r}")


class SchemaTree:
    """A rooted schema tree with unique element names and fast lookups."""

    def __init__(self, root: SchemaNode) -> None:
        self.root = root
        self._nodes: dict[str, SchemaNode] = {}
        self._parents: dict[str, str | None] = {}
        self._depths: dict[str, int] = {}
        self._fingerprint: str | None = None
        self._index(root, None, 0)

    def _index(self, node: SchemaNode, parent: str | None,
               depth: int) -> None:
        if node.name in self._nodes:
            raise SchemaError(
                f"element {node.name!r} is declared more than once"
            )
        self._nodes[node.name] = node
        self._parents[node.name] = parent
        self._depths[node.name] = depth
        for child in node.children:
            self._index(child, node.name, depth + 1)

    # -- lookups ---------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> SchemaNode:
        """Return the node named ``name``.

        Raises:
            SchemaError: if the element is not declared in this tree.
        """
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise SchemaError(f"unknown element {name!r}") from exc

    def element_names(self) -> list[str]:
        """All element names, in document (pre-) order."""
        return [node.name for node in self.iter_nodes()]

    def iter_nodes(self) -> Iterator[SchemaNode]:
        """Iterate all nodes in pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def fingerprint(self) -> str:
        """Canonical structural fingerprint of this tree.

        Two independently parsed copies of the same schema document
        (same element names, cardinalities, attribute lists and child
        order) produce the same hex digest, so identity-independent
        consumers — the discovery agency's registration check, the
        negotiated-plan cache — can recognize an agreed schema without
        sharing the Python object.
        """
        if self._fingerprint is None:
            parts: list[str] = []
            for node in self.iter_nodes():
                parts.append(
                    f"{node.name}{node.cardinality.value}"
                    f"[{','.join(node.attributes)}]"
                    f"({','.join(child.name for child in node.children)})"
                )
            digest = hashlib.sha256(
                "\n".join(parts).encode("utf-8")
            ).hexdigest()
            self._fingerprint = digest
        return self._fingerprint

    def structurally_equal(self, other: "SchemaTree") -> bool:
        """True when ``other`` describes the same schema, element for
        element — identity not required (e.g. two parses of one DTD)."""
        return self is other or self.fingerprint() == other.fingerprint()

    def parent_name(self, name: str) -> str | None:
        """Name of the parent element, or ``None`` for the root."""
        self.node(name)
        return self._parents[name]

    def parent_of(self, name: str) -> SchemaNode | None:
        """Parent node, or ``None`` for the root."""
        parent = self.parent_name(name)
        return None if parent is None else self._nodes[parent]

    def depth(self, name: str) -> int:
        """Root depth 0, children 1, and so on."""
        self.node(name)
        return self._depths[name]

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        """True if ``ancestor`` lies strictly above ``descendant``."""
        current = self.parent_name(descendant)
        while current is not None:
            if current == ancestor:
                return True
            current = self._parents[current]
        return False

    def path(self, name: str) -> list[str]:
        """Element names from the root down to ``name`` (inclusive)."""
        chain = [name]
        current = self.parent_name(name)
        while current is not None:
            chain.append(current)
            current = self._parents[current]
        chain.reverse()
        return chain

    def subtree_names(self, name: str) -> frozenset[str]:
        """Names of all elements in the full subtree rooted at ``name``."""
        names: list[str] = []
        stack = [self.node(name)]
        while stack:
            node = stack.pop()
            names.append(node.name)
            stack.extend(node.children)
        return frozenset(names)

    # -- structure checks used by fragments ------------------------------

    def is_connected(self, names: frozenset[str] | set[str]) -> bool:
        """True if ``names`` forms a connected subgraph of the tree.

        Equivalently: exactly one element of the set has its parent
        outside the set (or is the root).
        """
        if not names:
            return False
        tops = 0
        for name in names:
            parent = self.parent_name(name)
            if parent is None or parent not in names:
                tops += 1
        return tops == 1

    def top_of(self, names: frozenset[str] | set[str]) -> str:
        """Return the unique topmost element of a connected name set.

        Raises:
            SchemaError: if the set is empty or not connected.
        """
        tops = [
            name
            for name in names
            if (parent := self.parent_name(name)) is None
            or parent not in names
        ]
        if len(tops) != 1:
            raise SchemaError(
                f"element set {sorted(names)} is not a connected subtree"
            )
        return tops[0]

    def has_repeated_below(self, root_name: str,
                           names: frozenset[str] | set[str]) -> bool:
        """True if any element of ``names`` other than ``root_name`` is
        repeated (``*``/``+``) — i.e. the set is not *flat-storable*
        as a single relational row per root occurrence."""
        for name in names:
            if name == root_name:
                continue
            if self.node(name).cardinality.repeated:
                return True
        return False

    # -- pretty printing --------------------------------------------------

    def sketch(self) -> str:
        """Return an indented one-line-per-element sketch of the tree."""
        lines: list[str] = []

        def walk(node: SchemaNode, depth: int) -> None:
            suffix = node.cardinality.value
            attrs = f" @{','.join(node.attributes)}" if node.attributes else ""
            lines.append("  " * depth + node.name + suffix + attrs)
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
