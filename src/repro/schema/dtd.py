"""A DTD parser producing :class:`~repro.schema.model.SchemaTree` trees.

Supports the subset the paper's Figure 7 DTD uses:

* ``<!ELEMENT name (a, b?, c*, d+)>`` — sequences with occurrence
  suffixes,
* ``<!ELEMENT name (a+)>`` / ``(a*)`` — a single repeated child,
* ``<!ELEMENT name (#PCDATA)>`` and ``<!ELEMENT name EMPTY>`` — leaves,
* ``<!ATTLIST name attr CDATA|ID #REQUIRED|#IMPLIED>`` — attributes.

Alternation (``|``) and mixed content are out of scope and raise
:class:`~repro.errors.DtdSyntaxError` with a clear message, matching the
documents the paper actually exchanges.
"""

from __future__ import annotations

import re

from repro.errors import DtdSyntaxError, SchemaError
from repro.schema.model import Cardinality, SchemaNode, SchemaTree

_DECL_RE = re.compile(r"<!(ELEMENT|ATTLIST)\s+([^>]*?)>", re.DOTALL)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_.:-]*")


def _parse_children(name: str, model: str) -> list[tuple[str, Cardinality]]:
    """Parse a parenthesized content model into (child, cardinality) pairs."""
    if "|" in model:
        raise DtdSyntaxError(
            f"element {name!r}: alternation content models are not supported"
        )
    inner = model.strip()
    # A trailing suffix on the whole group, e.g. (item)* — applied to
    # each child that has no suffix of its own.
    group_suffix = ""
    if inner and inner[-1] in "?*+":
        group_suffix = inner[-1]
        inner = inner[:-1].strip()
    if not (inner.startswith("(") and inner.endswith(")")):
        raise DtdSyntaxError(
            f"element {name!r}: expected a parenthesized content model, "
            f"got {model!r}"
        )
    body = inner[1:-1]
    parts = [part.strip() for part in body.split(",") if part.strip()]
    children: list[tuple[str, Cardinality]] = []
    for part in parts:
        suffix = ""
        while part and part[-1] in "?*+":
            suffix = part[-1] + suffix
            part = part[:-1].strip()
        if len(suffix) > 1:
            raise DtdSyntaxError(
                f"element {name!r}: multiple occurrence suffixes in "
                f"{part + suffix!r}"
            )
        if not _NAME_RE.fullmatch(part):
            raise DtdSyntaxError(
                f"element {name!r}: bad child name {part!r}"
            )
        children.append((part, Cardinality.from_suffix(suffix or group_suffix)))
    return children


def parse_dtd(text: str, root: str | None = None) -> SchemaTree:
    """Parse DTD ``text`` and return its schema tree.

    Args:
        text: the DTD source (``<!ELEMENT ...>`` / ``<!ATTLIST ...>``
            declarations; comments are ignored).
        root: name of the root element.  When omitted, the unique element
            that no other element references is used.

    Raises:
        DtdSyntaxError: on unsupported or malformed declarations.
        SchemaError: if the declarations do not form a single tree.
    """
    text = _COMMENT_RE.sub("", text)
    content_models: dict[str, list[tuple[str, Cardinality]]] = {}
    attributes: dict[str, list[str]] = {}

    stripped = _DECL_RE.sub("", text).strip()
    if stripped:
        snippet = stripped.splitlines()[0][:60]
        raise DtdSyntaxError(f"unrecognized DTD content: {snippet!r}")

    for kind, body in _DECL_RE.findall(text):
        body = " ".join(body.split())
        name_match = _NAME_RE.match(body)
        if not name_match:
            raise DtdSyntaxError(f"missing element name in <!{kind} {body}>")
        name = name_match.group(0)
        rest = body[name_match.end():].strip()
        if kind == "ELEMENT":
            if name in content_models:
                raise DtdSyntaxError(f"element {name!r} declared twice")
            if rest in ("EMPTY", "(#PCDATA)", "ANY"):
                content_models[name] = []
            else:
                content_models[name] = _parse_children(name, rest)
        else:  # ATTLIST
            attr_names = _parse_attlist(name, rest)
            attributes.setdefault(name, []).extend(attr_names)

    if not content_models:
        raise DtdSyntaxError("DTD declares no elements")

    referenced = {
        child
        for children in content_models.values()
        for child, _ in children
    }
    for child in referenced:
        if child not in content_models:
            # Children used but never declared are treated as PCDATA
            # leaves, as parsers conventionally do for lax DTDs.
            content_models[child] = []

    if root is None:
        candidates = [
            name for name in content_models if name not in referenced
        ]
        if len(candidates) != 1:
            raise SchemaError(
                "cannot infer the root element; candidates: "
                f"{sorted(candidates)}"
            )
        root = candidates[0]
    elif root not in content_models:
        raise SchemaError(f"root element {root!r} is not declared")

    def build(name: str, cardinality: Cardinality,
              seen: tuple[str, ...]) -> SchemaNode:
        if name in seen:
            raise SchemaError(
                f"recursive element {name!r} cannot form a schema tree"
            )
        node = SchemaNode(
            name,
            cardinality,
            attributes=list(attributes.get(name, [])),
        )
        for child, child_card in content_models[name]:
            node.children.append(build(child, child_card, seen + (name,)))
        return node

    return SchemaTree(build(root, Cardinality.ONE, ()))


def _parse_attlist(name: str, rest: str) -> list[str]:
    """Extract attribute names from an ATTLIST body."""
    tokens = rest.split()
    names: list[str] = []
    index = 0
    while index < len(tokens):
        attr = tokens[index]
        if not _NAME_RE.fullmatch(attr):
            raise DtdSyntaxError(
                f"ATTLIST {name!r}: bad attribute name {attr!r}"
            )
        if index + 1 >= len(tokens):
            raise DtdSyntaxError(
                f"ATTLIST {name!r}: attribute {attr!r} missing a type"
            )
        names.append(attr)
        index += 2  # skip the type token
        # Skip the default declaration (#REQUIRED/#IMPLIED/#FIXED "v"/"v").
        if index < len(tokens) and tokens[index].startswith("#"):
            fixed = tokens[index] == "#FIXED"
            index += 1
            if fixed and index < len(tokens):
                index += 1
        elif index < len(tokens) and tokens[index].startswith(('"', "'")):
            index += 1
    return names


def serialize_dtd(schema: SchemaTree) -> str:
    """Render a schema tree back to DTD text (inverse of :func:`parse_dtd`)."""
    lines: list[str] = []
    for node in schema.iter_nodes():
        if node.is_leaf:
            lines.append(f"<!ELEMENT {node.name} (#PCDATA)>")
        else:
            parts = ", ".join(
                child.name + child.cardinality.value
                for child in node.children
            )
            lines.append(f"<!ELEMENT {node.name} ({parts})>")
        if node.attributes:
            attr_decls = " ".join(
                f"{attr} CDATA #IMPLIED" for attr in node.attributes
            )
            lines.append(f"<!ATTLIST {node.name} {attr_decls}>")
    return "\n".join(lines) + "\n"
