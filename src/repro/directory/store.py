"""The directory data model: Dewey DNs, object classes, entries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DirectoryError

#: A distinguished name is a Dewey path: () is the root, (1, 3) is the
#: third child of the first child of the root.
DN = tuple[int, ...]


@dataclass(frozen=True, slots=True)
class ObjectClass:
    """An object class: a name and the attributes entries MUST CONTAIN
    (``DN`` and ``objectclass`` are implicit, as in the paper's sketch
    of schema T)."""

    name: str
    must_contain: tuple[str, ...] = ()


@dataclass(slots=True)
class Entry:
    """One directory entry."""

    dn: DN
    objectclass: str
    attrs: dict[str, str] = field(default_factory=dict)

    def dn_string(self) -> str:
        """Dewey identifier rendered as dotted digits (root = '')."""
        return ".".join(str(step) for step in self.dn)


class DirectoryStore:
    """A tree of entries with class checking."""

    def __init__(self, name: str = "directory") -> None:
        self.name = name
        self._classes: dict[str, ObjectClass] = {}
        self._entries: dict[DN, Entry] = {
            (): Entry((), "top", {})
        }
        self._children: dict[DN, list[DN]] = {(): []}

    # -- schema --------------------------------------------------------------

    def define_class(self, object_class: ObjectClass) -> None:
        """Register an object class.

        Raises:
            DirectoryError: on duplicate class names.
        """
        if object_class.name in self._classes:
            raise DirectoryError(
                f"object class {object_class.name!r} already defined"
            )
        self._classes[object_class.name] = object_class

    def object_class(self, name: str) -> ObjectClass:
        """Return a defined class.

        Raises:
            DirectoryError: if unknown.
        """
        try:
            return self._classes[name]
        except KeyError as exc:
            raise DirectoryError(
                f"unknown object class {name!r}"
            ) from exc

    # -- entries ---------------------------------------------------------------

    def add_entry(self, parent_dn: DN, objectclass: str,
                  attrs: dict[str, str]) -> DN:
        """Add an entry under ``parent_dn`` and return its DN.

        Raises:
            DirectoryError: if the parent does not exist, the class is
                unknown, or a MUST CONTAIN attribute is missing.
        """
        if parent_dn not in self._entries:
            raise DirectoryError(
                f"parent DN {parent_dn!r} does not exist"
            )
        declared = self.object_class(objectclass)
        for required in declared.must_contain:
            if required not in attrs:
                raise DirectoryError(
                    f"class {objectclass!r} MUST CONTAIN {required!r}"
                )
        siblings = self._children[parent_dn]
        dn = parent_dn + (len(siblings) + 1,)
        entry = Entry(dn, objectclass, dict(attrs))
        self._entries[dn] = entry
        self._children[dn] = []
        siblings.append(dn)
        return dn

    def entry(self, dn: DN) -> Entry:
        """Return the entry at ``dn``.

        Raises:
            DirectoryError: if it does not exist.
        """
        try:
            return self._entries[dn]
        except KeyError as exc:
            raise DirectoryError(f"no entry at DN {dn!r}") from exc

    def children(self, dn: DN) -> list[Entry]:
        """Direct children of ``dn``, in insertion order."""
        self.entry(dn)
        return [self._entries[child] for child in self._children[dn]]

    def search(self, objectclass: str) -> list[Entry]:
        """All entries of one class, in DN order."""
        return sorted(
            (entry for entry in self._entries.values()
             if entry.objectclass == objectclass),
            key=lambda entry: entry.dn,
        )

    def __len__(self) -> int:
        """Number of entries, excluding the implicit root."""
        return len(self._entries) - 1
