"""An LDAP-like hierarchical directory store.

The motivating example's target system (Section 1.1) stores data in an
LDAP directory whose instances are trees and whose classes carry a
``DN`` (a Dewey identifier) plus an ``objectclass``.  This package is
that substrate: enough of the LDAP data model [7] for the provisioning
example to consume fragments without a relational engine.
"""

from repro.directory.store import DirectoryStore, Entry, ObjectClass

__all__ = ["DirectoryStore", "Entry", "ObjectClass"]
