"""Structured tracing: spans, the tracer, and trace exporters.

One :class:`Span` covers one timed thing — an operation execution, a
cross-edge shipment, one streamed batch on the wire, a retry attempt, a
pipeline step.  Spans carry a category (the taxonomy is documented in
``docs/observability.md``), a monotonic start offset, a duration in
seconds, a parent for nesting, and free-form JSON-able attributes.

:class:`Tracer` collects spans thread-safely.  Producers either wrap a
block in :meth:`Tracer.span` (measures wall time, maintains a
per-thread nesting stack) or call :meth:`Tracer.record` with timings
they already measured — the executors use ``record`` so a span's
duration is *exactly* the seconds the execution report accounts,
letting trace totals reconcile with report totals to the last float.

:data:`NULL_TRACER` is the no-op fast path: a :class:`NullTracer`
whose ``record`` returns immediately and whose ``span`` hands back a
shared do-nothing context manager.  Call sites never branch on
"is tracing on"; they call the tracer unconditionally and the null
implementation costs one method dispatch.

Exporters: :func:`write_jsonl_trace` (one JSON object per span per
line) and :func:`write_chrome_trace` (the Chrome ``chrome://tracing``
/ Perfetto trace-event format, complete-event ``"ph": "X"`` records
with microsecond timestamps relative to the tracer's epoch).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Iterable

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl_trace",
]


@dataclass(slots=True)
class Span:
    """One timed event.

    Attributes:
        name: human-readable label (e.g. ``"Combine(site+regions)"``).
        category: taxonomy bucket (``op``/``ship``/``batch``/``wire``/
            ``fault``/``retry``/``step``/``sim``/``run``).
        start: seconds since the tracer's epoch (monotonic clock).
        seconds: duration.
        span_id: unique id within the tracer.
        parent_id: enclosing span's id, or ``None`` at top level.
        thread: name of the recording thread.
        attrs: JSON-able key/value details (op ids, bytes, rows, …).
    """

    name: str
    category: str
    start: float
    seconds: float
    span_id: int
    parent_id: int | None = None
    thread: str = "MainThread"
    attrs: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (the JSON-lines record)."""
        return {
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "seconds": self.seconds,
            "id": self.span_id,
            "parent": self.parent_id,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class _ActiveSpan:
    """Context manager behind :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_started",
                 "_span_id", "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs
        self._started = 0.0
        self._span_id = 0
        self._parent_id: int | None = None

    def annotate(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._started = time.perf_counter()
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        seconds = time.perf_counter() - self._started
        self._tracer._exit(self, seconds)


class _NullSpan:
    """Shared do-nothing context manager of the null tracer."""

    __slots__ = ()

    def annotate(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span collector over a monotonic clock.

    The epoch is the tracer's construction instant
    (``time.perf_counter()``); every span's ``start`` is an offset from
    it, so traces from one process line up without wall-clock skew.
    """

    #: Producers may consult this to skip *building* expensive
    #: attributes; calling :meth:`record` is always safe either way.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stacks = threading.local()
        self.spans: list[Span] = []

    # -- recording --------------------------------------------------------------

    def record(self, name: str, category: str, *,
               start: float | None = None, seconds: float = 0.0,
               **attrs: object) -> Span:
        """Append one span with externally measured timings.

        ``start`` is an absolute ``time.perf_counter()`` reading (the
        usual case: the caller sampled the clock itself); ``None``
        means "now minus ``seconds``".  The current thread's open
        :meth:`span` (if any) becomes the parent.
        """
        if start is None:
            start = time.perf_counter() - seconds
        parent = self._current()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                name, category, start - self._epoch, seconds, span_id,
                parent_id=parent,
                thread=threading.current_thread().name,
                attrs=dict(attrs),
            )
            self.spans.append(span)
        return span

    def span(self, name: str, category: str,
             **attrs: object) -> _ActiveSpan:
        """Context manager measuring a block's wall time as one span."""
        return _ActiveSpan(self, name, category, dict(attrs))

    # -- nesting stack (per thread) ----------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def _current(self) -> int | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _enter(self, active: _ActiveSpan) -> None:
        # The id is claimed on entry so spans recorded *inside* the
        # block nest under it; the span record itself lands on exit.
        with self._lock:
            active._span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        active._parent_id = stack[-1] if stack else None
        stack.append(active._span_id)

    def _exit(self, active: _ActiveSpan, seconds: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == active._span_id:
            stack.pop()
        span = Span(
            active._name, active._category,
            active._started - self._epoch, seconds, active._span_id,
            parent_id=active._parent_id,
            thread=threading.current_thread().name,
            attrs=active._attrs,
        )
        with self._lock:
            self.spans.append(span)

    # -- queries ------------------------------------------------------------------

    def spans_of(self, category: str) -> list[Span]:
        """Spans of one category, in recording order."""
        with self._lock:
            return [
                span for span in self.spans
                if span.category == category
            ]

    def total_seconds(self, category: str | None = None) -> float:
        """Summed duration of all spans (optionally one category)."""
        with self._lock:
            return sum(
                span.seconds for span in self.spans
                if category is None or span.category == category
            )


class NullTracer(Tracer):
    """The documented no-op fast path.

    ``record`` returns immediately without touching any lock or list;
    ``span`` returns a shared no-op context manager.  ``spans`` is
    always empty.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def record(self, name: str, category: str, *,
               start: float | None = None, seconds: float = 0.0,
               **attrs: object) -> None:  # type: ignore[override]
        return None

    def span(self, name: str, category: str,
             **attrs: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN


#: Shared no-op tracer; ``tracer or NULL_TRACER`` is the idiom every
#: instrumented constructor uses.
NULL_TRACER = NullTracer()


# -- exporters -------------------------------------------------------------------


def write_jsonl_trace(tracer: Tracer | Iterable[Span],
                      stream: IO[str]) -> int:
    """Write one JSON object per span per line; returns span count."""
    spans = tracer.spans if isinstance(tracer, Tracer) else tracer
    count = 0
    for span in spans:
        stream.write(json.dumps(span.to_dict(), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def chrome_trace_events(tracer: Tracer | Iterable[Span]
                        ) -> dict[str, object]:
    """The Chrome trace-event document for a recorded trace.

    Complete events (``"ph": "X"``) with microsecond ``ts``/``dur``
    relative to the tracer's epoch; one ``tid`` per recording thread
    (named via metadata events) so the viewer lays concurrent spans
    out on separate tracks.
    """
    spans = tracer.spans if isinstance(tracer, Tracer) else list(tracer)
    thread_ids: dict[str, int] = {}
    events: list[dict[str, object]] = []
    for span in spans:
        tid = thread_ids.setdefault(span.thread, len(thread_ids) + 1)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.seconds * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": dict(span.attrs, span_id=span.span_id),
        })
    for thread, tid in thread_ids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer | Iterable[Span],
                       stream: IO[str]) -> int:
    """Write the ``chrome://tracing``-loadable JSON document.

    Returns the number of (non-metadata) trace events written.
    """
    document = chrome_trace_events(tracer)
    json.dump(document, stream)
    return sum(
        1 for event in document["traceEvents"]  # type: ignore[union-attr]
        if event.get("ph") == "X"
    )
