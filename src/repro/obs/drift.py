"""Cost-drift reporting: predicted vs measured, per op and per edge.

``Cost_Based_Optim`` picks combine orderings and placements by the
cost model's ``comp_cost``/``comm_cost`` predictions (formula 1).
This module closes the loop: it joins what actually happened — an
:class:`~repro.core.program.executor.ExecutionReport`, or a recorded
trace — against what the optimizer predicted, and reports the drift
ratio ``measured / predicted`` for every executed operation and every
cross-edge shipment, rolled up per operation kind.

Two readings of the ratios:

* against the raw unit-cost model the per-kind ratios *are* the
  machine's seconds-per-work-unit scales (what
  :func:`repro.core.cost.calibrate.calibrate` fits) — large spread
  between kinds means the unit ratios are off for this substrate;
* against a calibrated model
  (:meth:`~repro.core.cost.calibrate.Calibration.scaled_model`) the
  ratios should hover near 1.0 — sustained drift means the
  calibration has gone stale and should be re-fit, which
  :func:`calibration_from_trace` does straight from a recorded trace
  instead of re-running synthetic probes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.cost.calibrate import (
    Calibration,
    calibrate_timings,
    strategy_key,
)
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.probe import CostProbe
from repro.core.ops.base import Location
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.executor import (
    ExecutionReport,
    OperationTiming,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "OpDrift",
    "EdgeDrift",
    "DriftReport",
    "cost_drift_report",
    "report_from_trace",
    "calibration_from_trace",
]


@dataclass(slots=True)
class OpDrift:
    """Predicted vs measured cost of one executed operation."""

    op_id: int
    label: str
    kind: str
    location: Location
    predicted: float
    measured_seconds: float
    rows: int
    #: Dataplane strategy the op actually ran ("row", "columnar",
    #: or the columnar join strategies "hash"/"merge").
    strategy: str = "row"

    @property
    def ratio(self) -> float | None:
        """``measured / predicted`` (``None`` when the prediction is
        zero or infinite — nothing meaningful to compare against)."""
        if not math.isfinite(self.predicted) or self.predicted <= 0:
            return None
        return self.measured_seconds / self.predicted


@dataclass(slots=True)
class EdgeDrift:
    """Predicted vs measured cost of one cross-edge shipment."""

    edge: tuple[int, int]
    fragment: str
    predicted: float
    measured_seconds: float
    bytes_sent: int
    batches: int

    @property
    def ratio(self) -> float | None:
        """``measured / predicted`` (``None`` for degenerate
        predictions, as on :class:`OpDrift`)."""
        if not math.isfinite(self.predicted) or self.predicted <= 0:
            return None
        return self.measured_seconds / self.predicted


@dataclass(slots=True)
class DriftReport:
    """The joined prediction-vs-reality view of one executed program."""

    ops: list[OpDrift] = field(default_factory=list)
    edges: list[EdgeDrift] = field(default_factory=list)

    def kind_ratios(self) -> dict[str, float]:
        """Per-kind drift: summed measured over summed predicted.

        Keys are the operation kinds that executed plus ``"comm"`` for
        the cross-edges; kinds whose predictions are all degenerate
        are omitted.  Ops that ran a non-row dataplane strategy roll
        up under the qualified :func:`~repro.core.cost.calibrate.
        strategy_key` (``"combine.hash"``), so hash, merge and row
        drifts are visible side by side.
        """
        sums: dict[str, tuple[float, float]] = {}
        for entry in self.ops:
            if entry.ratio is None:
                continue
            key = strategy_key(entry.kind, entry.strategy)
            measured, predicted = sums.get(key, (0.0, 0.0))
            sums[key] = (
                measured + entry.measured_seconds,
                predicted + entry.predicted,
            )
        for edge in self.edges:
            if edge.ratio is None:
                continue
            measured, predicted = sums.get("comm", (0.0, 0.0))
            sums["comm"] = (
                measured + edge.measured_seconds,
                predicted + edge.predicted,
            )
        return {
            kind: measured / predicted
            for kind, (measured, predicted) in sorted(sums.items())
            if predicted > 0
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-able form (what ``--trace``-adjacent tooling stores)."""
        return {
            "ops": [
                {
                    "op_id": entry.op_id,
                    "label": entry.label,
                    "kind": entry.kind,
                    "location": entry.location.name.lower(),
                    "predicted": entry.predicted,
                    "measured_seconds": entry.measured_seconds,
                    "rows": entry.rows,
                    "strategy": entry.strategy,
                    "ratio": entry.ratio,
                }
                for entry in self.ops
            ],
            "edges": [
                {
                    "edge": list(edge.edge),
                    "fragment": edge.fragment,
                    "predicted": edge.predicted,
                    "measured_seconds": edge.measured_seconds,
                    "bytes": edge.bytes_sent,
                    "batches": edge.batches,
                    "ratio": edge.ratio,
                }
                for edge in self.edges
            ],
            "kind_ratios": self.kind_ratios(),
        }

    def render(self) -> str:
        """Aligned text rendering (the CLI ``--drift`` output)."""
        lines = [
            f"{'operation':<34} {'kind':<8} {'where':<7} "
            f"{'predicted':>12} {'measured s':>12} {'ratio':>10}"
        ]
        for entry in self.ops:
            ratio = (
                f"{entry.ratio:.3g}" if entry.ratio is not None
                else "n/a"
            )
            lines.append(
                f"{entry.label:<34.34} {entry.kind:<8} "
                f"{entry.location.name.lower():<7} "
                f"{entry.predicted:>12.5g} "
                f"{entry.measured_seconds:>12.6f} {ratio:>10}"
            )
        for edge in self.edges:
            ratio = (
                f"{edge.ratio:.3g}" if edge.ratio is not None else "n/a"
            )
            label = (
                f"edge {edge.edge[0]}:{edge.edge[1]} "
                f"({edge.fragment})"
            )
            lines.append(
                f"{label:<34.34} {'comm':<8} {'wire':<7} "
                f"{edge.predicted:>12.5g} "
                f"{edge.measured_seconds:>12.6f} {ratio:>10}"
            )
        lines.append("")
        lines.append("per-kind drift (measured / predicted):")
        for kind, ratio in self.kind_ratios().items():
            lines.append(f"  {kind:<16} {ratio:.6g}")
        return "\n".join(lines)


def cost_drift_report(program: TransferProgram, placement: Placement,
                      report: ExecutionReport,
                      probe: CostProbe) -> DriftReport:
    """Join an executed program's measurements against ``probe``.

    Every node of ``program`` gets an :class:`OpDrift` (measured
    seconds come from the report's timings, matched by ``op_id``) and
    every cross-edge of ``placement`` an :class:`EdgeDrift` (measured
    seconds/bytes come from the report's shipment accounting).
    Predictions are priced at the strategy each op actually ran when
    the probe supports per-strategy pricing (``CostModel`` and
    ``CalibratedCostModel`` do; plain endpoint probes fall back to
    their single-strategy estimate).

    Raises:
        ValueError: if the report lacks a timing for some node — it
            was produced by a different program.
    """
    timings = {
        timing.op_id: timing for timing in report.op_timings
    }
    result = DriftReport()
    for node in program.topological_order():
        timing = timings.get(node.op_id)
        if timing is None:
            raise ValueError(
                f"report has no timing for op {node.op_id} "
                f"({node.label()}); was it produced by this program?"
            )
        location = placement[node.op_id]
        strategy = getattr(timing, "strategy", "row")
        if strategy in ("", "row"):
            predicted = probe.comp_cost(node, location)
        else:
            try:
                predicted = probe.comp_cost(node, location, strategy)
            except TypeError:
                # Probe predates per-strategy pricing — its single
                # estimate is the best prediction it can offer.
                predicted = probe.comp_cost(node, location)
        result.ops.append(OpDrift(
            op_id=node.op_id,
            label=node.label(),
            kind=node.kind,
            location=location,
            predicted=predicted,
            measured_seconds=timing.seconds,
            rows=timing.rows,
            strategy=strategy,
        ))
    for edge in program.cross_edges(placement):
        key = (edge.producer.op_id, edge.output_index)
        result.edges.append(EdgeDrift(
            edge=key,
            fragment=edge.fragment.name,
            predicted=probe.comm_cost(edge.fragment),
            measured_seconds=report.shipment_seconds.get(key, 0.0),
            bytes_sent=report.shipment_bytes.get(key, 0),
            batches=report.shipment_batches.get(key, 1),
        ))
    return result


# -- rebuilding execution facts from a recorded trace -----------------------------


def _spans(trace: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(trace, Tracer):
        return list(trace.spans)
    return list(trace)


def report_from_trace(program: TransferProgram,
                      trace: Tracer | Iterable[Span]
                      ) -> ExecutionReport:
    """Rebuild an :class:`ExecutionReport` from a recorded trace.

    Op spans (category ``op``) become ``op_timings`` in topological
    order; ship and batch spans (categories ``ship``/``batch``)
    rebuild the per-edge shipment accounting.  The result carries
    exactly the fields drift reporting and calibration consume —
    robustness counters and peaks stay zero (they are not per-span
    facts).

    Raises:
        ValueError: if the trace has no op span for some program node,
            or several for one node.
    """
    op_spans: dict[int, Span] = {}
    report = ExecutionReport()
    for span in _spans(trace):
        if span.category == "op":
            op_id = int(span.attrs["op_id"])  # type: ignore[arg-type]
            if op_id in op_spans:
                raise ValueError(
                    f"trace has multiple op spans for op {op_id}"
                )
            op_spans[op_id] = span
        elif span.category in ("ship", "batch"):
            key = (
                int(span.attrs["edge_op"]),  # type: ignore[arg-type]
                int(span.attrs["edge_port"]),  # type: ignore[arg-type]
            )
            size = int(span.attrs.get("bytes", 0))  # type: ignore[arg-type]
            if key not in report.shipment_seconds:
                report.shipments += 1
            report.shipment_seconds[key] = (
                report.shipment_seconds.get(key, 0.0) + span.seconds
            )
            report.shipment_bytes[key] = (
                report.shipment_bytes.get(key, 0) + size
            )
            if span.category == "batch":
                report.shipment_batches[key] = (
                    report.shipment_batches.get(key, 0) + 1
                )
            report.comm_seconds += span.seconds
            report.comm_bytes += size
    for node in program.topological_order():
        span = op_spans.get(node.op_id)
        if span is None:
            raise ValueError(
                f"trace has no op span for op {node.op_id} "
                f"({node.label()})"
            )
        location = Location[str(span.attrs["location"]).upper()]
        rows = int(span.attrs.get("rows", 0))  # type: ignore[arg-type]
        strategy = str(span.attrs.get("strategy", "row"))
        report.op_timings.append(OperationTiming(
            span.name, str(span.attrs.get("kind", node.kind)),
            location, span.seconds, rows, node.op_id, strategy,
        ))
        report.comp_seconds[location] += span.seconds
        if node.kind == "write":
            report.rows_written += rows
    return report


def calibration_from_trace(program: TransferProgram,
                           trace: Tracer | Iterable[Span],
                           statistics: StatisticsCatalog) -> Calibration:
    """Fit per-kind cost scales from a recorded trace.

    The trace's op spans carry the same measured seconds the execution
    report would, so this is the drop-in replacement for probing: run
    once with tracing on, keep the trace, re-fit whenever the drift
    report says the model has gone stale.

    Raises:
        ValueError: if the trace does not cover the program.
    """
    report = report_from_trace(program, trace)
    return calibrate_timings(program, report.op_timings, statistics)
