"""Metrics: counters, gauges, fixed-bucket histograms, one registry.

This replaces the ad-hoc accounting that used to be scattered across
the pipeline — ``repro.reporting.timers`` now delegates here, the
executors feed per-op-kind rows/bytes/seconds histograms, the parallel
executor reports its in-flight queue depth as a gauge, and the fault
layer counts retries and discarded duplicates.  Metric names are
dotted lowercase (``op.combine.seconds``, ``ship.bytes``,
``retry.resends``); the full catalogue lives in
``docs/observability.md``.

All instruments are thread-safe.  A :class:`MetricsRegistry` is
get-or-create by name: asking twice returns the same instrument,
asking for the same name with a different instrument type raises.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
    "observe_join",
    "observe_operation",
    "observe_shipment",
]

#: Default histogram bounds for durations (seconds): 10 µs … 100 s in
#: 1-2-5 steps — wide enough for a scan batch and a whole run alike.
SECONDS_BUCKETS: tuple[float, ...] = (
    1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0,
)

#: Default bounds for sizes/counts (rows, bytes): powers of four.
SIZE_BUCKETS: tuple[float, ...] = tuple(
    4.0 ** exponent for exponent in range(0, 16)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be >= 0).

        Raises:
            ValueError: on a negative amount (counters never go down).
        """
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def snapshot(self) -> dict[str, object]:
        """Plain-dict form for reports."""
        return {"type": "counter", "value": self._value}


class Gauge:
    """A level that moves both ways, with a high-water mark.

    The parallel executor's queue depth is the motivating use:
    ``add(+1)`` on submit, ``add(-1)`` on completion, and ``peak``
    answers "how deep did the ready queue ever get".
    """

    __slots__ = ("name", "_lock", "_value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        """Set the level outright."""
        with self._lock:
            self._value = value
            if value > self.peak:
                self.peak = value

    def add(self, delta: float) -> None:
        """Move the level by ``delta`` (either sign)."""
        with self._lock:
            self._value += delta
            if self._value > self.peak:
                self.peak = self._value

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def snapshot(self) -> dict[str, object]:
        """Plain-dict form for reports."""
        return {"type": "gauge", "value": self._value,
                "peak": self.peak}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are the inclusive upper edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches the rest.
    Bucket layout is frozen at construction (fixed-bucket by design:
    merging and comparing across runs needs stable edges).
    """

    __slots__ = ("name", "bounds", "_lock", "counts", "total", "count",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = SECONDS_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} needs ascending bucket bounds"
            )
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self._lock = threading.Lock()
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket in
        which the ``q``-th observation falls (``max`` for overflow).

        Raises:
            ValueError: if ``q`` is outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def snapshot(self) -> dict[str, object]:
        """Plain-dict form for reports."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.bounds, self.counts)
                if count
            },
            "overflow": self.counts[-1],
        }


class MetricsRegistry:
    """Named instruments, get-or-create, one namespace per run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[
            str, Counter | Gauge | Histogram
        ] = {}

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a "
                    f"{kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: Sequence[float] = SECONDS_BUCKETS
                  ) -> Histogram:
        """The histogram called ``name`` (created on first use;
        ``bounds`` only applies at creation)."""
        return self._get(
            name, Histogram, lambda: Histogram(name, bounds)
        )

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Name → plain-dict state of every instrument."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: instrument.snapshot()
                for name, instrument in sorted(items)}

    def render(self) -> str:
        """Aligned text table of the registry (for CLI ``--metrics``)."""
        lines = [f"{'metric':<36} {'kind':<10} value"]
        for name, state in self.snapshot().items():
            kind = state["type"]
            if kind == "counter":
                detail = f"{state['value']}"
            elif kind == "gauge":
                detail = (f"{state['value']:g} "
                          f"(peak {state['peak']:g})")
            else:
                detail = (f"n={state['count']} sum={state['sum']:.6g} "
                          f"min={state['min']:.3g} "
                          f"max={state['max']:.3g}")
            lines.append(f"{name:<36} {kind:<10} {detail}")
        return "\n".join(lines)


def observe_operation(registry: MetricsRegistry | None, kind: str,
                      seconds: float, rows: int) -> None:
    """Record one executed operation into the standard op metrics
    (``op.<kind>.count``/``.rows``/``.seconds``).  ``None`` registry
    is the no-op fast path."""
    if registry is None:
        return
    registry.counter(f"op.{kind}.count").add(1)
    registry.counter(f"op.{kind}.rows").add(rows)
    registry.histogram(f"op.{kind}.seconds").observe(seconds)


def observe_join(registry: MetricsRegistry | None, strategy: str,
                 build_rows: int, probe_rows: int) -> None:
    """Record one columnar combine's build/probe statistics into the
    join metrics: ``join.build_rows``/``join.probe_rows`` accumulate
    the side sizes and ``join.strategy.<strategy>`` counts how often
    each join strategy was selected."""
    if registry is None:
        return
    registry.counter("join.build_rows").add(build_rows)
    registry.counter("join.probe_rows").add(probe_rows)
    registry.counter(f"join.strategy.{strategy}").add(1)


def observe_shipment(registry: MetricsRegistry | None,
                     bytes_sent: int, seconds: float,
                     batch: bool = False) -> None:
    """Record one cross-edge transfer into the standard ship metrics
    (``ship.messages``/``.bytes``/``.seconds`` plus
    ``ship.batch_bytes`` for streamed chunks)."""
    if registry is None:
        return
    registry.counter("ship.messages").add(1)
    registry.counter("ship.bytes").add(bytes_sent)
    registry.histogram("ship.seconds").observe(seconds)
    if batch:
        registry.histogram(
            "ship.batch_bytes", SIZE_BUCKETS
        ).observe(bytes_sent)


class Timer:
    """Measure a block's elapsed time::

        with Timer() as timer:
            work()
        print(timer.seconds)

    This is the engine behind :class:`repro.reporting.timers.Timer`
    (kept there as a thin alias for compatibility).  Optionally bind a
    registry: each exit observes the elapsed seconds into the named
    histogram, so ad-hoc timers feed the same metric namespace as the
    executors.
    """

    __slots__ = ("seconds", "_started", "_histogram")

    def __init__(self, registry: MetricsRegistry | None = None,
                 metric: str = "timer.seconds") -> None:
        self.seconds = 0.0
        self._started = 0.0
        self._histogram = (
            registry.histogram(metric) if registry is not None else None
        )

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._started
        if self._histogram is not None:
            self._histogram.observe(self.seconds)
