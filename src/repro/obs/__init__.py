"""Observability for the exchange pipeline: tracing, metrics, drift.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — structured spans with monotonic clocks and
  thread-safe collection, exported as JSON-lines or Chrome
  ``chrome://tracing`` trace-event files.  :data:`~repro.obs.trace.
  NULL_TRACER` is the documented no-op fast path: every producer calls
  it unconditionally and pays one attribute lookup plus an early
  return when tracing is off.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms replacing the ad-hoc accounting that used to
  live in ``repro.reporting.timers`` and around the executors.
* :mod:`repro.obs.drift` — joins a recorded trace (or an
  :class:`~repro.core.program.executor.ExecutionReport`) against the
  optimizer's predicted ``comp_cost``/``comm_cost`` and reports
  per-op-kind drift ratios; also rebuilds calibration inputs from a
  trace so :mod:`repro.core.cost.calibrate` can fit scales from real
  runs instead of synthetic probes.

``drift`` imports the core program machinery, which itself imports
``repro.obs.trace``; the lazy ``__getattr__`` below keeps that cycle
out of package import time.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl_trace",
    # lazily resolved from repro.obs.drift (import-cycle guard):
    "DriftReport",
    "EdgeDrift",
    "OpDrift",
    "calibration_from_trace",
    "cost_drift_report",
    "report_from_trace",
]

_DRIFT_NAMES = {
    "DriftReport",
    "EdgeDrift",
    "OpDrift",
    "calibration_from_trace",
    "cost_drift_report",
    "report_from_trace",
}


def __getattr__(name: str):
    if name in _DRIFT_NAMES:
        from repro.obs import drift

        return getattr(drift, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
