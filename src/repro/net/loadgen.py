"""Concurrent load harness for the live service tier.

Drives N concurrent :class:`~repro.services.broker.ExchangeBroker`
sessions against a running :class:`~repro.net.server.ExchangeServer`:
the control plane is exercised over real HTTP (register the source and
target systems from their WSDL documents, negotiate a plan via SOAP),
and every session's bytes move over its own
:class:`~repro.net.transport.TcpTransport` socket into the server's
:class:`~repro.net.server.FeedSink`.  The harness records per-session
latency, summarises p50/p95/p99 percentiles plus throughput into a
:class:`LoadReport`, and verifies that *zero* sessions failed and that
every session wrote the same number of target rows (a lost or corrupted
exchange cannot hide in an average).

``python -m repro loadgen`` is the CLI front end; with no ``--host`` it
self-serves: it stands up an in-process server on loopback, fires the
burst, and tears the server down — which is exactly what the CI
``load-smoke`` job runs.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SoapFault
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.net.server import ExchangeServer, SoapHttpClient
from repro.net.transport import TcpTransport, Transport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.services.agency import DiscoveryAgency
from repro.services.broker import ExchangeBroker, PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.workloads.xmark import (
    generate_xmark_document,
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.services.broker import ExchangeSession

__all__ = ["percentile", "LoadReport", "run_load"]


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation
    between closest ranks — the standard "exclusive of nothing"
    definition (numpy's default), so ``percentile(v, 50)`` is the
    median.

    Raises:
        ValueError: on an empty sample or ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass(slots=True)
class LoadReport:
    """What one load run measured.

    Latencies are per-session end-to-end seconds (negotiation plus the
    exchange run over the live socket); ``throughput`` is completed
    sessions per wall-clock second across the whole burst.
    """

    sessions: int
    workers: int
    failed: int
    wall_seconds: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_seconds: float
    max_seconds: float
    throughput_sessions_per_second: float
    comm_bytes: int
    rows_written: int
    cache_hits: int
    transport: str = "tcp"
    workload: str = "xmark MF->LF"
    document_bytes: int = 0
    failures: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "benchmark": "load",
            "transport": self.transport,
            "workload": self.workload,
            "document_bytes": self.document_bytes,
            "sessions": self.sessions,
            "workers": self.workers,
            "failed": self.failed,
            "failures": self.failures,
            "wall_seconds": round(self.wall_seconds, 6),
            "latency_seconds": {
                "p50": round(self.p50_seconds, 6),
                "p95": round(self.p95_seconds, 6),
                "p99": round(self.p99_seconds, 6),
                "mean": round(self.mean_seconds, 6),
                "max": round(self.max_seconds, 6),
            },
            "throughput_sessions_per_second": round(
                self.throughput_sessions_per_second, 3
            ),
            "comm_bytes": self.comm_bytes,
            "rows_written_per_session": self.rows_written,
            "plan_cache_hits": self.cache_hits,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable summary block."""
        lines = [
            f"load: {self.sessions} sessions x {self.workers} workers "
            f"over {self.transport} ({self.workload})",
            f"  wall        {self.wall_seconds:.3f} s "
            f"({self.throughput_sessions_per_second:.1f} sessions/s)",
            f"  latency     p50 {self.p50_seconds * 1e3:.1f} ms | "
            f"p95 {self.p95_seconds * 1e3:.1f} ms | "
            f"p99 {self.p99_seconds * 1e3:.1f} ms | "
            f"max {self.max_seconds * 1e3:.1f} ms",
            f"  shipped     {self.comm_bytes} bytes, "
            f"{self.rows_written} rows/session, "
            f"{self.cache_hits} warm negotiations",
            f"  failed      {self.failed}",
        ]
        return "\n".join(lines)


def _already_registered(fault: SoapFault) -> bool:
    return "already registered" in str(fault)


def run_load(sessions: int = 100, workers: int = 8, *,
             host: str | None = None,
             http_port: int = 0, feed_port: int = 0,
             document_bytes: int = 40_000, seed: int = 99,
             batch_rows: int | None = None, columnar: bool = False,
             out: str | None = None,
             metrics: MetricsRegistry | None = None,
             tracer: Tracer | None = None) -> LoadReport:
    """Fire ``sessions`` concurrent exchange sessions at a live server.

    With ``host=None`` the harness self-serves: it starts an in-process
    :class:`~repro.net.server.ExchangeServer` on loopback and tears it
    down afterwards.  With a host, ``http_port``/``feed_port`` must
    name a running server's two planes (``python -m repro serve``).

    Every session registers against the XMark MF source / LF target
    pair: the harness first exercises the HTTP control plane (register
    both systems from their WSDL text, negotiate once over SOAP), then
    lets the broker — ``max_pending=sessions``, so the whole burst is
    admitted concurrently — run each session over its own
    :class:`~repro.net.transport.TcpTransport` connection.

    A session *fails* if it raises or if its target store's row count
    differs from the consensus; ``report.failed`` counts both.  When
    ``out`` is given the report's JSON lands there (the committed
    ``BENCH_load.json`` is one of these).
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tracer = tracer or NULL_TRACER

    # -- workload: XMark MF -> LF ------------------------------------------------
    schema = xmark_schema()
    mf = xmark_mf_fragmentation(schema)
    lf = xmark_lf_fragmentation(schema)
    document = generate_xmark_document(
        document_bytes, seed=seed, schema=schema
    )
    source = RelationalEndpoint("load-src", mf)
    source.load_document(document)
    probe = CostModel(StatisticsCatalog.synthetic(schema))

    # The broker plans against its local agency view (the paper's
    # requester holds its own copy of the agreed schema); the *server*
    # holds the authoritative agency the HTTP plane registers into.
    agency = DiscoveryAgency(schema)
    agency.register("src", mf, source)
    agency.register("tgt", lf)

    server: ExchangeServer | None = None
    if host is None:
        server_agency = DiscoveryAgency(xmark_schema())
        server = ExchangeServer(
            server_agency, probe=probe, metrics=metrics,
            tracer=tracer,
        ).start()
        host, http_port = server.http_address
        feed_port = server.feed_address[1]

    transports: list[Transport] = []
    transports_lock = threading.Lock()

    def open_transport() -> TcpTransport:
        transport = TcpTransport.connect(host, feed_port,
                                         tracer=tracer)
        with transports_lock:
            transports.append(transport)
        return transport

    targets: list[RelationalEndpoint] = []
    targets_lock = threading.Lock()

    def make_target() -> RelationalEndpoint:
        with targets_lock:
            endpoint = RelationalEndpoint(f"T{len(targets)}", lf)
            targets.append(endpoint)
        return endpoint

    failures: list[str] = []
    results: list["ExchangeSession"] = []
    try:
        # -- control plane over real HTTP -------------------------------------
        client = SoapHttpClient(host, http_port)
        for name, registration in (
            ("src", agency.registration("src")),
            ("tgt", agency.registration("tgt")),
        ):
            try:
                client.register(name, registration.wsdl_text)
            except SoapFault as fault:
                # A long-lived server keeps registrations across
                # bursts; anything else is a real failure.
                if not _already_registered(fault):
                    raise
        negotiated = client.negotiate("src", "tgt", schema)
        negotiated[0].validate_placement(negotiated[1])

        # -- the burst ---------------------------------------------------------
        cache = PlanCache(metrics=metrics)
        started = time.perf_counter()
        with ExchangeBroker(
            agency, plan_cache=cache, max_workers=workers,
            max_pending=sessions, probe=probe,
            channel_factory=open_transport,
            batch_rows=batch_rows, columnar=columnar,
            metrics=metrics, tracer=tracer,
        ) as broker:
            futures = [
                broker.submit("src", "tgt", make_target, wait=True,
                              scenario=f"load-{index}")
                for index in range(sessions)
            ]
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as exc:  # noqa: BLE001 - tallied
                    failures.append(
                        f"session {index}: "
                        f"{type(exc).__name__}: {exc}"
                    )
        wall = time.perf_counter() - started
    finally:
        with transports_lock:
            for transport in transports:
                transport.close()
        if server is not None:
            server.stop()

    # -- verification: no session may disagree -------------------------------
    row_counts = sorted(
        {session.outcome.rows_written for session in results}
    )
    rows_written = row_counts[0] if len(row_counts) == 1 else -1
    if len(row_counts) > 1:
        failures.append(
            f"sessions disagree on rows written: {row_counts}"
        )

    latencies = [session.total_seconds for session in results]
    if not latencies:
        latencies = [0.0]
    report = LoadReport(
        sessions=sessions,
        workers=workers,
        failed=len(failures),
        wall_seconds=wall,
        p50_seconds=percentile(latencies, 50),
        p95_seconds=percentile(latencies, 95),
        p99_seconds=percentile(latencies, 99),
        mean_seconds=sum(latencies) / len(latencies),
        max_seconds=max(latencies),
        throughput_sessions_per_second=(
            len(results) / wall if wall > 0 else 0.0
        ),
        comm_bytes=sum(
            session.outcome.comm_bytes for session in results
        ),
        rows_written=rows_written,
        cache_hits=cache.hits,
        document_bytes=document_bytes,
        failures=failures[:20],
    )
    if out is not None:
        with open(out, "w", encoding="utf-8") as stream:
            stream.write(report.to_json())
            stream.write("\n")
    return report
