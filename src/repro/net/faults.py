"""Lossy-channel fault injection and the reliable shipping layer.

The paper's step 4 runs the transfer program over a real Internet path
(Table 3); real paths drop, corrupt, duplicate, re-order, and delay
messages.  This module makes transport failure a first-class input:

* :class:`FaultPlan` — a deterministic, seeded schedule of faults.
  Each wire transmission gets a global message index; the plan decides
  (by per-index seeded draw, or an explicit script) whether and how
  that transmission fails.  Same plan, same decisions — runs are
  reproducible, which is what lets the differential suite assert
  byte-identical output under loss.
* :class:`FaultyChannel` — wraps any shipping channel and applies the
  plan: drops and corruptions raise (after charging the wasted bytes
  to the wrapped channel — a lost message burned the wire), duplicates
  deliver twice, re-orders hold a message back until the next one
  passes it, delays inflate transfer time.
* :class:`RetryPolicy` — bounded attempts with exponential backoff (a
  ``jitter`` hook decorates the delay) and an optional per-message
  timeout; exhaustion raises :class:`~repro.errors.RetryExhausted`
  carrying the attempt count and last cause.
* :class:`ReliableChannel` / :class:`ReliableBatchLink` — the healing
  layer the executors wire in: re-send on drop/corruption/timeout,
  de-duplicate re-deliveries by sequence number (idempotent delivery),
  and re-assemble re-ordered batch streams in ``seq`` order, so the
  written output stays byte-identical to a fault-free run.

Corruption detection is real where the wire is real: with a
``wire_format`` channel the corrupted SOAP message fails its Adler-32
feed checksum on decode (:mod:`repro.net.soap`); on byte-counting
channels the checksum verdict is simulated.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Callable, Iterable, Mapping, TypeVar

from repro.errors import (
    MessageCorrupted,
    MessageDropped,
    MessageTimeout,
    RetryExhausted,
    SoapFault,
    TransportError,
)
from repro.core.instance import FragmentInstance
from repro.core.program.executor import Shipment
from repro.core.stream import RowBatch
from repro.net.soap import CHECKSUM_ATTR, unwrap_fragment_feed, wrap_fragment_feed
from repro.obs.trace import NULL_TRACER, Tracer

_T = TypeVar("_T")


class FaultKind(str, Enum):
    """The ways one wire transmission can misbehave."""

    DROP = "drop"
    CORRUPT = "corrupt"
    DUPLICATE = "duplicate"
    REORDER = "reorder"
    DELAY = "delay"


#: Rate-style fields of :class:`FaultPlan`, in draw order.
_RATE_FIELDS = ("drop", "corrupt", "duplicate", "reorder", "delay")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of channel faults.

    Two modes:

    * **seeded rates** — each transmission index draws once from a
      ``random.Random`` seeded by ``(seed, index)``, so the decision
      for message *i* is stable regardless of thread interleaving or
      how many other messages were sent;
    * **scripted** — ``script`` maps message indices to fault kinds
      exactly (the fault-matrix tests use this to make every kind fire
      on schedule).

    ``delay_seconds`` is the extra in-flight time a ``delay`` (or a
    held ``reorder``) message suffers.
    """

    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.05
    seed: int = 0
    script: Mapping[int, FaultKind] | None = None

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault rate {name}={rate} must be in [0, 1]"
                )
        if sum(getattr(self, name) for name in _RATE_FIELDS) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds cannot be negative")
        if self.script is not None and any(
            getattr(self, name) for name in _RATE_FIELDS
        ):
            raise ValueError(
                "a scripted plan cannot also carry fault rates"
            )

    @classmethod
    def scripted(cls, schedule: Mapping[int, FaultKind | str],
                 **kwargs: object) -> "FaultPlan":
        """A plan firing exactly the given ``index -> kind`` schedule."""
        script = {
            int(index): FaultKind(kind)
            for index, kind in schedule.items()
        }
        return cls(script=script, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI spec.

        Rate form: ``"drop=0.1,corrupt=0.05,seed=7"``.  Scripted form:
        ``"drop@3,corrupt@5"`` (fault kind at message index).  The two
        forms cannot be mixed, matching the dataclass's validation.

        Raises:
            ValueError: on unknown keys, bad numbers, or mixed forms.
        """
        numeric = {f.name for f in fields(cls)} - {"script", "seed"}
        rates: dict[str, float] = {}
        seed: int | None = None
        script: dict[int, FaultKind] = {}
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if "@" in token:
                kind_text, _, index_text = token.partition("@")
                try:
                    script[int(index_text)] = FaultKind(kind_text.strip())
                except ValueError as exc:
                    raise ValueError(
                        f"bad scripted fault {token!r}: {exc}"
                    ) from exc
                continue
            key, _, value = token.partition("=")
            key = key.strip()
            if key == "seed":
                seed = int(value)
            elif key in numeric:
                try:
                    rates[key] = float(value)
                except ValueError as exc:
                    raise ValueError(
                        f"bad fault rate {token!r}"
                    ) from exc
            else:
                raise ValueError(
                    f"unknown fault-plan key {key!r} (expected one of "
                    f"{sorted(numeric | {'seed'})} or kind@index)"
                )
        kwargs: dict[str, object] = dict(rates)
        if seed is not None:
            kwargs["seed"] = seed
        if script:
            kwargs["script"] = script
        return cls(**kwargs)  # type: ignore[arg-type]

    def fault_for(self, index: int) -> FaultKind | None:
        """The fault (if any) transmission number ``index`` suffers."""
        if self.script is not None:
            return self.script.get(index)
        draw = random.Random(f"{self.seed}:{index}").random()
        for name in _RATE_FIELDS:
            draw -= getattr(self, name)
            if draw < 0.0:
                return FaultKind(name)
        return None

    @property
    def failure_probability(self) -> float:
        """Per-transmission chance of an unusable delivery (the
        re-send-triggering kinds: drop and corrupt)."""
        return min(1.0, self.drop + self.corrupt)

    def expected_transmission_factor(self, max_attempts: int) -> float:
        """Expected wire transmissions per delivered message.

        Retries multiply traffic by the truncated geometric series
        ``(1 - p^n) / (1 - p)`` for failure probability ``p`` and up to
        ``n`` attempts; duplicates add their extra copy on top.  This
        is the expected-cost-under-loss model the simulator applies to
        communication cost.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        p = self.failure_probability
        if p >= 1.0:
            attempts = float(max_attempts)
        else:
            attempts = (1.0 - p ** max_attempts) / (1.0 - p)
        return attempts * (1.0 + self.duplicate)

    def describe(self) -> str:
        """Human-readable one-liner for reports and the CLI."""
        if self.script is not None:
            schedule = ",".join(
                f"{kind.value}@{index}"
                for index, kind in sorted(self.script.items())
            )
            return schedule or "no faults"
        parts = [
            f"{name}={getattr(self, name):g}"
            for name in _RATE_FIELDS
            if getattr(self, name)
        ]
        if not parts:
            return "no faults"
        return ",".join(parts) + f",seed={self.seed}"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-send policy for one message.

    ``delay_for(failures)`` grows exponentially from
    ``base_delay_seconds`` by ``backoff_factor``, capped at
    ``max_delay_seconds``; a ``jitter`` hook (e.g. ``lambda d:
    d * random.random()``) decorates the computed delay.  ``sleep`` is
    injectable so tests never wait for real.  ``timeout_seconds``
    bounds one message's simulated delivery time — a slower delivery
    counts as a failure and is re-sent.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_delay_seconds: float = 1.0
    timeout_seconds: float | None = None
    jitter: Callable[[float], float] | None = None
    sleep: Callable[[float], None] | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0:
            raise ValueError("base_delay_seconds cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive or None")

    def delay_for(self, failures: int) -> float:
        """Backoff delay after the ``failures``-th consecutive failure
        (1-based)."""
        delay = min(
            self.base_delay_seconds
            * self.backoff_factor ** (failures - 1),
            self.max_delay_seconds,
        )
        if self.jitter is not None:
            delay = self.jitter(delay)
        return max(delay, 0.0)

    def check_timeout(self, shipment: Shipment) -> Shipment:
        """Enforce the per-message timeout on a delivery receipt.

        Raises:
            MessageTimeout: if the shipment took longer than allowed
                (the wasted transmission stays charged).
        """
        if self.timeout_seconds is not None \
                and shipment.seconds > self.timeout_seconds:
            raise MessageTimeout(
                f"message took {shipment.seconds:.3f}s, over the "
                f"{self.timeout_seconds:.3f}s timeout"
            )
        return shipment

    def run(self, send: Callable[[], _T], describe: str,
            stats: "RobustnessStats | _EdgeScopedStats | None" = None,
            tracer: "Tracer | None" = None) -> _T:
        """Call ``send`` until it succeeds or attempts run out.

        Retryable failures are :class:`~repro.errors.TransportError`
        and :class:`~repro.errors.SoapFault` (drop, corruption,
        timeout); anything else propagates immediately.  Every failed
        attempt records one ``retry`` span on ``tracer``.

        Raises:
            RetryExhausted: after ``max_attempts`` failures, carrying
                the attempt count and the last cause.
        """
        tracer = tracer or NULL_TRACER
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            attempt_started = time.perf_counter()
            try:
                return send()
            except (TransportError, SoapFault) as exc:
                if isinstance(exc, RetryExhausted):
                    raise
                last = exc
                tracer.record(
                    f"retry {describe}", "retry",
                    start=attempt_started,
                    seconds=time.perf_counter() - attempt_started,
                    attempt=attempt, error=type(exc).__name__,
                )
                if stats is not None and isinstance(exc, MessageTimeout):
                    stats.count_timeout()
                if attempt == self.max_attempts:
                    break
                if stats is not None:
                    stats.count_retry()
                delay = self.delay_for(attempt)
                if delay > 0:
                    (self.sleep or time.sleep)(delay)
        raise RetryExhausted(
            f"{describe}: gave up after {self.max_attempts} attempts "
            f"({last})",
            attempts=self.max_attempts,
            last_cause=last,
        ) from last


class RobustnessStats:
    """Thread-safe counters of the reliable layer's healing work.

    Besides the run-wide totals, retries and discarded duplicates are
    broken down per edge (the producer-port key the executors use) in
    ``retries_by_edge``/``redelivered_by_edge``.  Edge counts are
    accumulated with ``+=`` under the lock — several links sharing one
    stats object (the streaming executors arm one
    :class:`ReliableBatchLink` per cross-edge over a single stats
    instance) sum per edge rather than overwrite each other.
    """

    __slots__ = ("_lock", "retries", "redelivered", "timeouts",
                 "retries_by_edge", "redelivered_by_edge")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.retries = 0
        self.redelivered = 0
        self.timeouts = 0
        self.retries_by_edge: dict[object, int] = {}
        self.redelivered_by_edge: dict[object, int] = {}

    def count_retry(self, edge: object = None) -> None:
        """One re-send after a transport failure (on ``edge``)."""
        with self._lock:
            self.retries += 1
            if edge is not None:
                self.retries_by_edge[edge] = (
                    self.retries_by_edge.get(edge, 0) + 1
                )

    def count_redelivered(self, copies: int = 1,
                          edge: object = None) -> None:
        """``copies`` duplicate deliveries discarded by seq dedup."""
        with self._lock:
            self.redelivered += copies
            if edge is not None:
                self.redelivered_by_edge[edge] = (
                    self.redelivered_by_edge.get(edge, 0) + copies
                )

    def count_timeout(self) -> None:
        """One delivery abandoned for exceeding the message timeout."""
        with self._lock:
            self.timeouts += 1

    def scoped(self, edge: object) -> "_EdgeScopedStats":
        """A view that attributes every count to ``edge``."""
        return _EdgeScopedStats(self, edge)


class _EdgeScopedStats:
    """Forwards to a :class:`RobustnessStats`, binding one edge."""

    __slots__ = ("_stats", "_edge")

    def __init__(self, stats: RobustnessStats, edge: object) -> None:
        self._stats = stats
        self._edge = edge

    def count_retry(self, edge: object = None) -> None:
        self._stats.count_retry(edge if edge is not None else self._edge)

    def count_redelivered(self, copies: int = 1,
                          edge: object = None) -> None:
        self._stats.count_redelivered(
            copies, edge if edge is not None else self._edge
        )

    def count_timeout(self) -> None:
        self._stats.count_timeout()


@dataclass(slots=True)
class FaultStats:
    """What a :class:`FaultyChannel` actually injected."""

    drops: int = 0
    corruptions: int = 0
    duplicates: int = 0
    reorders: int = 0
    delays: int = 0

    @property
    def injected(self) -> int:
        """Total faults fired."""
        return (self.drops + self.corruptions + self.duplicates
                + self.reorders + self.delays)


def corrupt_soap_message(message: str) -> str:
    """Flip content inside a SOAP message (the in-flight bit error).

    Prefers mangling the feed checksum's first hex digit — guaranteed
    to be caught by verification — and falls back to rotating a
    character in the middle of the payload.
    """
    marker = f'{CHECKSUM_ATTR}="'
    position = message.find(marker)
    if position >= 0:
        position += len(marker)
    else:
        position = len(message) // 2
    original = message[position]
    replacement = "0" if original != "0" else "1"
    return message[:position] + replacement + message[position + 1:]


class FaultyChannel:
    """Deterministic fault-injecting wrapper around a shipping channel.

    Implements the executors' ``ShippingChannel`` protocol: without a
    retry layer above it, injected drops/corruptions surface as raised
    :class:`~repro.errors.TransportError` subclasses (fail-fast, the
    pre-robustness behaviour).  The ``transmit_*`` methods additionally
    report *what the receiver got* — zero, one, or two copies, possibly
    out of order — which is what :class:`ReliableChannel` and
    :class:`ReliableBatchLink` heal from.

    Every transmission (including re-sends) consumes a fresh message
    index from the plan and, when the wrapped channel supports it
    (:meth:`~repro.net.transport.SimulatedChannel.charge_lost`), failed
    transmissions charge their bytes — loss is never free.  Unknown
    attributes delegate to the wrapped channel so accounting
    (``total_bytes``, ``reset``, …) reads through.
    """

    def __init__(self, inner: object, plan: FaultPlan,
                 tracer: Tracer | None = None) -> None:
        self.inner = inner
        self.plan = plan
        self.stats = FaultStats()
        self.tracer = tracer or NULL_TRACER
        self._lock = threading.Lock()
        self._index = 0
        self._held: dict[object, list[RowBatch]] = {}

    def __getattr__(self, name: str) -> object:
        return getattr(self.inner, name)

    # -- plan bookkeeping --------------------------------------------------------

    def _next_fault(self) -> tuple[int, FaultKind | None]:
        with self._lock:
            index = self._index
            self._index += 1
        kind = self.plan.fault_for(index)
        if kind is not None:
            self.tracer.record(
                f"fault:{kind.value}", "fault", seconds=0.0,
                index=index,
            )
        return index, kind

    def _charge_lost(self, size_bytes: int) -> None:
        charge = getattr(self.inner, "charge_lost", None)
        if charge is not None:
            charge(size_bytes)

    def _charge_delay(self, seconds: float) -> None:
        charge = getattr(self.inner, "charge_delay", None)
        if charge is not None:
            charge(seconds)

    def _count(self, attr: str) -> None:
        with self._lock:
            setattr(self.stats, attr, getattr(self.stats, attr) + 1)

    # -- sizes mirror what the wrapped channel charges ----------------------------

    def _wire(self) -> bool:
        return bool(getattr(self.inner, "wire_format", False))

    def _fragment_size(self, instance: FragmentInstance) -> int:
        if self._wire():
            return len(wrap_fragment_feed(instance))
        return instance.feed_size()

    def _batch_size(self, batch: RowBatch) -> int:
        if self._wire():
            return len(wrap_fragment_feed(
                FragmentInstance(batch.fragment, batch.rows),
                seq=batch.seq,
            ))
        return batch.feed_size()

    def _corrupt(self, index: int, instance: FragmentInstance,
                 seq: int | None, size: int) -> None:
        """Charge the garbled transmission and raise its detection."""
        self._count("corruptions")
        if self._wire():
            message = corrupt_soap_message(
                wrap_fragment_feed(instance, seq=seq)
            )
            self._charge_lost(len(message))
            try:
                unwrap_fragment_feed(message, instance.fragment)
            except SoapFault as fault:
                raise MessageCorrupted(
                    f"message {index} corrupted in flight: {fault}"
                ) from fault
        else:
            self._charge_lost(size)
        raise MessageCorrupted(
            f"message {index} corrupted in flight "
            "(feed checksum mismatch)"
        )

    # -- ShippingChannel protocol -------------------------------------------------

    def ship_fragment(self, instance: FragmentInstance) -> Shipment:
        """Ship a whole feed; raises on injected drop/corruption."""
        shipment, _ = self.transmit_fragment(instance)
        return shipment

    def ship_batch(self, batch: RowBatch) -> Shipment:
        """Ship one batch; raises on injected drop/corruption."""
        shipment, _ = self.transmit_batch(batch)
        return shipment

    def ship_document(self, text: str) -> Shipment:
        """Ship a published document; raises on drop/corruption."""
        index, kind = self._next_fault()
        if kind is FaultKind.DROP:
            self._count("drops")
            self._charge_lost(len(text))
            raise MessageDropped(
                f"document message {index} dropped by fault plan"
            )
        if kind is FaultKind.CORRUPT:
            self._count("corruptions")
            self._charge_lost(len(text))
            raise MessageCorrupted(
                f"document message {index} corrupted in flight"
            )
        shipment = self.inner.ship_document(text)
        if kind is FaultKind.DUPLICATE:
            self._count("duplicates")
            self._charge_lost(len(text))
        elif kind in (FaultKind.DELAY, FaultKind.REORDER):
            self._count("delays" if kind is FaultKind.DELAY
                        else "reorders")
            self._charge_delay(self.plan.delay_seconds)
            shipment = Shipment(
                shipment.bytes_sent,
                shipment.seconds + self.plan.delay_seconds,
            )
        return shipment

    # -- delivery-level API (used by the reliable layer) ---------------------------

    def transmit_fragment(
        self, instance: FragmentInstance,
    ) -> tuple[Shipment, list[FragmentInstance]]:
        """One wire transmission of a whole feed.

        Returns the charge receipt plus the copies the receiver got.
        A single-message edge has nothing to overtake, so ``reorder``
        degrades to a delayed (but delivered) message.
        """
        index, kind = self._next_fault()
        if kind is FaultKind.DROP:
            self._count("drops")
            self._charge_lost(self._fragment_size(instance))
            raise MessageDropped(
                f"message {index} dropped by fault plan"
            )
        if kind is FaultKind.CORRUPT:
            self._corrupt(index, instance, None,
                          self._fragment_size(instance))
        shipment = self.inner.ship_fragment(instance)
        if kind is FaultKind.DUPLICATE:
            self._count("duplicates")
            self._charge_lost(self._fragment_size(instance))
            return shipment, [instance, instance]
        if kind in (FaultKind.DELAY, FaultKind.REORDER):
            self._count("delays" if kind is FaultKind.DELAY
                        else "reorders")
            self._charge_delay(self.plan.delay_seconds)
            shipment = Shipment(
                shipment.bytes_sent,
                shipment.seconds + self.plan.delay_seconds,
            )
        return shipment, [instance]

    def transmit_batch(
        self, batch: RowBatch, edge: object = None,
    ) -> tuple[Shipment, list[RowBatch]]:
        """One wire transmission of a stream batch.

        ``edge`` scopes the re-order holdback: a held batch is released
        right after the next successful transmission *of the same
        edge*, arriving behind its successor (the out-of-order
        delivery the receiver's seq reassembly must fix).
        """
        index, kind = self._next_fault()
        if kind is FaultKind.DROP:
            self._count("drops")
            self._charge_lost(self._batch_size(batch))
            raise MessageDropped(
                f"message {index} (batch {batch.seq}) dropped by "
                "fault plan"
            )
        if kind is FaultKind.CORRUPT:
            self._corrupt(index, batch.to_instance(), batch.seq,
                          self._batch_size(batch))
        shipment = self.inner.ship_batch(batch)
        with self._lock:
            held = self._held.setdefault(edge, [])
            if kind is FaultKind.REORDER:
                # Transmitted now, delivered behind the next message.
                self.stats.reorders += 1
                held.append(batch)
                return shipment, []
            delivered = [batch] + held[:]
            held.clear()
        if kind is FaultKind.DUPLICATE:
            self._count("duplicates")
            self._charge_lost(self._batch_size(batch))
            delivered.insert(1, batch)
        elif kind is FaultKind.DELAY:
            self._count("delays")
            self._charge_delay(self.plan.delay_seconds)
            shipment = Shipment(
                shipment.bytes_sent,
                shipment.seconds + self.plan.delay_seconds,
            )
        return shipment, delivered

    def flush_batches(self, edge: object = None) -> list[RowBatch]:
        """Deliver any batches still held back on ``edge`` (stream
        end: the late messages do eventually arrive)."""
        with self._lock:
            held = self._held.pop(edge, [])
        return held


class ReliableChannel:
    """At-least-once adapter over any shipping channel.

    Wraps every send in the :class:`RetryPolicy` (drop, corruption and
    timeout trigger re-sends; a fresh transmission gets a fresh fault
    draw) and discards duplicate deliveries, counting them in
    ``stats``.  Implements the executors' ``ShippingChannel`` protocol;
    unknown attributes delegate to the wrapped channel.
    """

    def __init__(self, channel: object, policy: RetryPolicy,
                 stats: RobustnessStats | None = None,
                 tracer: Tracer | None = None) -> None:
        self.channel = channel
        self.policy = policy
        self.stats = stats or RobustnessStats()
        self.tracer = tracer or NULL_TRACER

    def __getattr__(self, name: str) -> object:
        return getattr(self.channel, name)

    def _settle(self, shipment: Shipment, delivered: list[object],
                edge: object = None) -> Shipment:
        self.policy.check_timeout(shipment)
        if len(delivered) > 1:
            self.stats.count_redelivered(len(delivered) - 1, edge)
        return shipment

    def ship_fragment(self, instance: FragmentInstance,
                      edge: object = None) -> Shipment:
        """Deliver a whole feed, retrying injected failures.

        ``edge`` (the executors' producer-port key) attributes the
        healing work to that cross-edge in the stats breakdown.
        """
        transmit = getattr(self.channel, "transmit_fragment", None)

        def send() -> Shipment:
            if transmit is not None:
                shipment, delivered = transmit(instance)
            else:
                shipment = self.channel.ship_fragment(instance)
                delivered = [instance]
            return self._settle(shipment, delivered, edge)

        stats = (
            self.stats if edge is None else self.stats.scoped(edge)
        )
        return self.policy.run(
            send, f"fragment feed {instance.fragment.name!r}",
            stats, self.tracer,
        )

    def ship_batch(self, batch: RowBatch,
                   edge: object = None) -> Shipment:
        """Deliver one batch, retrying injected failures."""
        transmit = getattr(self.channel, "transmit_batch", None)

        def send() -> Shipment:
            if transmit is not None:
                shipment, delivered = transmit(batch)
            else:
                shipment = self.channel.ship_batch(batch)
                delivered = [batch]
            return self._settle(shipment, delivered, edge)

        stats = (
            self.stats if edge is None else self.stats.scoped(edge)
        )
        return self.policy.run(
            send,
            f"batch {batch.seq} of fragment {batch.fragment.name!r}",
            stats, self.tracer,
        )

    def ship_document(self, text: str) -> Shipment:
        """Deliver a published document, retrying injected failures."""

        def send() -> Shipment:
            return self.policy.check_timeout(
                self.channel.ship_document(text)
            )

        return self.policy.run(
            send, "published document", self.stats, self.tracer
        )


class ReliableBatchLink:
    """Reliable in-order delivery of one cross-edge batch stream.

    The sender side re-sends on failure (per :class:`RetryPolicy`);
    the receiver side de-duplicates by batch ``seq`` and buffers
    out-of-order arrivals until the gap fills, emitting batches in
    exactly the order a fault-free channel would have.  Deliveries are
    absorbed *before* the timeout verdict, so a late-but-delivered
    message is never lost — its re-send is simply discarded as a
    duplicate.
    """

    def __init__(self, channel: object, policy: RetryPolicy | None,
                 stats: RobustnessStats, edge: object,
                 start_seq: int = 0,
                 tracer: Tracer | None = None) -> None:
        self.channel = channel
        self.policy = policy
        self.stats = stats.scoped(edge)
        self.edge = edge
        self.tracer = tracer or NULL_TRACER
        self._transmit = getattr(channel, "transmit_batch", None)
        self._flush = getattr(channel, "flush_batches", None)
        self._expected = start_seq
        self._seen: set[int] = set()
        self._buffer: dict[int, RowBatch] = {}

    def _absorb(self, delivered: Iterable[RowBatch]) -> list[RowBatch]:
        ready: list[RowBatch] = []
        for batch in delivered:
            if batch.seq in self._seen or batch.seq < self._expected:
                self.stats.count_redelivered()
                continue
            self._seen.add(batch.seq)
            self._buffer[batch.seq] = batch
        while self._expected in self._buffer:
            ready.append(self._buffer.pop(self._expected))
            self._seen.discard(self._expected)
            self._expected += 1
        return ready

    def send(self, batch: RowBatch
             ) -> tuple[Shipment, list[RowBatch]]:
        """Transmit one batch; return the charge receipt and every
        batch that became deliverable in order."""
        ready: list[RowBatch] = []

        def attempt() -> Shipment:
            if self._transmit is not None:
                shipment, delivered = self._transmit(batch, self.edge)
            else:
                shipment = self.channel.ship_batch(batch)
                delivered = [batch]
            ready.extend(self._absorb(delivered))
            if self.policy is not None:
                self.policy.check_timeout(shipment)
            return shipment

        if self.policy is not None:
            shipment = self.policy.run(
                attempt,
                f"batch {batch.seq} of fragment "
                f"{batch.fragment.name!r}",
                self.stats, self.tracer,
            )
        else:
            shipment = attempt()
        return shipment, ready

    def finish(self) -> list[RowBatch]:
        """Flush held-back deliveries at end of stream.

        Raises:
            TransportError: if a sequence gap survives the flush (a
                batch was never delivered despite retries).
        """
        delivered = (
            self._flush(self.edge) if self._flush is not None else []
        )
        ready = self._absorb(delivered)
        if self._buffer:
            missing = self._expected
            arrived = sorted(self._buffer)
            raise TransportError(
                f"batch stream gap: batch {missing} never arrived "
                f"(received {arrived} past it)"
            )
        return ready


def reliable_ship_fragment(
    channel: object, policy: RetryPolicy | None,
    instance: FragmentInstance, stats: RobustnessStats,
) -> Shipment:
    """Ship one materialized feed through the reliable layer (or
    straight through when no policy is configured)."""
    if policy is None:
        return channel.ship_fragment(instance)
    return ReliableChannel(channel, policy, stats).ship_fragment(
        instance
    )
