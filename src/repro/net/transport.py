"""A simulated network channel between the source and target systems.

The paper's machines were connected through the Internet; Table 3 times
TCP transfers of fragments and full documents.  The channel charges
``latency + bytes / bandwidth`` seconds per message and keeps running
totals.  Two fidelity levels:

* the default counts bytes from the instance's estimated size (fast),
* ``wire_format=True`` actually serializes each fragment feed into its
  SOAP message and parses it back on the other side — the full encode/
  ship/decode path (used by integration tests and available to the
  benchmarks).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import TransportError
from repro.core.instance import FragmentInstance
from repro.core.program.executor import Shipment
from repro.core.stream import RowBatch
from repro.net.soap import unwrap_fragment_feed, wrap_fragment_feed
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True, slots=True)
class NetworkProfile:
    """Link characteristics.

    The default approximates the paper's inter-state Internet path of
    2003: ~1.25 MB/s sustained.  Per-message latency is kept small by
    default because the experiments run on scaled-down documents — at
    the paper's 25 MB a 50 ms handshake is invisible, but at 2% scale
    it would dominate and distort every shape; scale-independent
    behaviour matters more than a realistic RTT here.
    """

    name: str = "internet"
    bandwidth_bytes_per_second: float = 1_250_000.0
    latency_seconds: float = 0.002

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_second <= 0:
            raise TransportError("bandwidth must be positive")
        if self.latency_seconds < 0:
            raise TransportError("latency cannot be negative")


class SimulatedChannel:
    """One-way source → target data channel with byte/time accounting.

    Accounting is thread-safe: concurrent shippers (the parallel
    executor pipelines transfers against computation) may charge the
    channel from multiple threads.  With ``realtime=True`` every send
    also *sleeps* its simulated transfer time, so a measured wall clock
    feels the link; concurrent sends sleep concurrently, modelling one
    transfer stream per in-flight fragment.
    """

    def __init__(self, profile: NetworkProfile | None = None,
                 wire_format: bool = False,
                 realtime: bool = False,
                 tracer: Tracer | None = None) -> None:
        self.profile = profile or NetworkProfile()
        self.wire_format = wire_format
        self.realtime = realtime
        self.tracer = tracer or NULL_TRACER
        self.total_bytes = 0
        self.total_seconds = 0.0
        self.messages = 0
        self.lost_messages = 0
        self.lost_bytes = 0
        self._closed = False
        self._lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Close the channel; further sends raise."""
        self._closed = True

    def reset(self) -> None:
        """Zero the counters (fresh measurement window)."""
        with self._lock:
            self.total_bytes = 0
            self.total_seconds = 0.0
            self.messages = 0
            self.lost_messages = 0
            self.lost_bytes = 0

    def _charge(self, size_bytes: int) -> Shipment:
        if self._closed:
            raise TransportError("channel is closed")
        started = time.perf_counter()
        seconds = self.transfer_cost(size_bytes)
        with self._lock:
            self.total_bytes += size_bytes
            self.total_seconds += seconds
            self.messages += 1
        if self.realtime:
            time.sleep(seconds)
        # Span duration is the *simulated* transfer time — in realtime
        # mode that equals the wall time slept; otherwise the wire span
        # shows what the link charged, not the bookkeeping overhead.
        self.tracer.record(
            "wire", "wire", start=started, seconds=seconds,
            bytes=size_bytes,
        )
        return Shipment(size_bytes, seconds)

    def charge_lost(self, size_bytes: int) -> Shipment:
        """Account a transmission that consumed the wire but delivered
        nothing usable — a dropped or corrupted message, or the
        discarded copy of a duplicate.

        Failed and retried sends burn bandwidth and link time exactly
        like successful ones; without this accounting a lossy run would
        understate its communication cost by every wasted transmission.
        """
        shipment = self._charge(size_bytes)
        with self._lock:
            self.lost_messages += 1
            self.lost_bytes += size_bytes
        return shipment

    def charge_delay(self, seconds: float) -> None:
        """Account extra in-flight time (an injected delivery delay)."""
        with self._lock:
            self.total_seconds += seconds
        if self.realtime:
            time.sleep(seconds)

    # -- cost interface (used by probes) ---------------------------------------------

    def transfer_cost(self, size_bytes: float) -> float:
        """Seconds to move ``size_bytes`` over this link."""
        return (
            self.profile.latency_seconds
            + size_bytes / self.profile.bandwidth_bytes_per_second
        )

    # -- shipping ----------------------------------------------------------------------

    def ship_fragment(self, instance: FragmentInstance) -> Shipment:
        """Ship one fragment feed (cross-edge traffic).

        In wire format the feed is SOAP-encoded, charged at its actual
        message size, decoded again, and the decoded rows *replace* the
        instance's rows — so downstream operations consume exactly what
        crossed the network.
        """
        if not self.wire_format:
            # Fragments travel as tabular sorted feeds (Section 4.1).
            return self._charge(instance.feed_size())
        message = wrap_fragment_feed(instance)
        shipment = self._charge(len(message))
        received = unwrap_fragment_feed(message, instance.fragment)
        instance.rows[:] = received.rows
        return shipment

    def ship_batch(self, batch: RowBatch) -> Shipment:
        """Ship one batch of a fragment feed (chunked cross-edge
        traffic of the streaming dataplane).

        Each batch is one message: it pays the per-message latency —
        finer batching buys pipelining at the price of more handshakes,
        exactly the chunk-size trade-off of a streamed transfer.  Wire
        format encodes/decodes the batch like :meth:`ship_fragment`
        does the whole feed, replacing the batch's rows with what
        crossed the network.
        """
        if not self.wire_format:
            return self._charge(batch.feed_size())
        instance = FragmentInstance(batch.fragment, batch.rows)
        message = wrap_fragment_feed(instance, seq=batch.seq)
        shipment = self._charge(len(message))
        received = unwrap_fragment_feed(message, batch.fragment)
        batch.rows[:] = received.rows
        return shipment

    def ship_document(self, text: str) -> Shipment:
        """Ship a whole published document (publish&map step 3)."""
        return self._charge(len(text))
