"""Pluggable transports between the source and target systems.

The paper's machines were connected through the Internet; Table 3 times
TCP transfers of fragments and full documents.  Everything that ships
data — the executors, the reliable/faulty channel wrappers, the
exchange service, the broker, and the simulator — depends only on the
:class:`Transport` interface defined here, so the wire under an
exchange is interchangeable:

* :class:`SimulatedChannel` charges ``latency + bytes / bandwidth``
  simulated seconds per message (the reproduction's measured quantity),
* :class:`InProcessTransport` is the zero-cost degenerate case (bytes
  are counted, no time is charged — a perfect LAN),
* :class:`TcpTransport` moves every message over a real socket as a
  length-prefixed SOAP envelope and measures actual wall seconds — the
  deployment transport behind :mod:`repro.net.server`.

All three account thread-safely, enforce send-after-close uniformly
(:class:`~repro.errors.TransportError`), and support the optional
``wire_format`` fidelity level: each fragment feed is serialized into
its SOAP message and parsed back on the other side — the full encode/
ship/decode path (always on for :class:`TcpTransport`, where the wire
is real).
"""

from __future__ import annotations

import abc
import socket
import threading
import time
from dataclasses import dataclass

from repro.errors import TransportError
from repro.core.instance import FragmentInstance
from repro.core.program.executor import Shipment
from repro.core.stream import RowBatch
from repro.net.soap import (
    unwrap_fragment_feed,
    wrap_document,
    wrap_fragment_feed,
)
from repro.obs.trace import NULL_TRACER, Tracer

#: Frame header: one big-endian unsigned 32-bit payload length.
FRAME_HEADER_BYTES = 4
#: Upper bound on one framed message (defensive: a corrupt header must
#: not make a receiver try to allocate gigabytes).
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame to ``sock``.

    Raises:
        TransportError: if the payload exceeds :data:`MAX_FRAME_BYTES`.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    header = len(payload).to_bytes(FRAME_HEADER_BYTES, "big")
    sock.sendall(header + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF at a
    frame boundary.

    Raises:
        TransportError: if the connection dies mid-frame.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise TransportError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one length-prefixed frame, or ``None`` on a clean EOF.

    Raises:
        TransportError: on a truncated frame or an oversized header.
    """
    header = _recv_exact(sock, FRAME_HEADER_BYTES)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame header declares {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length)
    if payload is None and length:
        raise TransportError("connection closed before frame payload")
    return payload if payload is not None else b""


@dataclass(frozen=True, slots=True)
class NetworkProfile:
    """Link characteristics.

    The default approximates the paper's inter-state Internet path of
    2003: ~1.25 MB/s sustained.  Per-message latency is kept small by
    default because the experiments run on scaled-down documents — at
    the paper's 25 MB a 50 ms handshake is invisible, but at 2% scale
    it would dominate and distort every shape; scale-independent
    behaviour matters more than a realistic RTT here.
    """

    name: str = "internet"
    bandwidth_bytes_per_second: float = 1_250_000.0
    latency_seconds: float = 0.002

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_second <= 0:
            raise TransportError("bandwidth must be positive")
        if self.latency_seconds < 0:
            raise TransportError("latency cannot be negative")


#: A loopback-ish profile for transports whose time is *measured*
#: rather than charged (cost probes still need a transfer-cost answer).
LOOPBACK_PROFILE = NetworkProfile(
    "loopback",
    bandwidth_bytes_per_second=1_000_000_000.0,
    latency_seconds=0.0001,
)


class Transport(abc.ABC):
    """One-way source → target data transport with byte/time accounting.

    This is the interface every shipper in the system depends on —
    executors ship fragment feeds and stream batches through it, the
    publish&map pipeline ships whole documents, fault injection and the
    reliable layer wrap it, the exchange service resets and reads its
    accounting windows, and cost probes ask it :meth:`transfer_cost`.

    Accounting is thread-safe: concurrent shippers (the parallel
    executor pipelines transfers against computation) may charge the
    transport from multiple threads.  Lifecycle is uniform across
    implementations: :meth:`close` is idempotent and thread-safe, and
    any send after it raises :class:`~repro.errors.TransportError`.
    """

    def __init__(self, profile: NetworkProfile | None = None,
                 wire_format: bool = False,
                 tracer: Tracer | None = None) -> None:
        self.profile = profile or NetworkProfile()
        self.wire_format = wire_format
        self.tracer = tracer or NULL_TRACER
        self.total_bytes = 0
        self.total_seconds = 0.0
        self.messages = 0
        self.lost_messages = 0
        self.lost_bytes = 0
        self._closed = False
        self._lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Close the transport; further sends raise.

        Thread-safe and idempotent: the first call flips the closed
        flag under the lock and runs :meth:`_on_close` exactly once;
        later calls are no-ops.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._on_close()

    def _on_close(self) -> None:
        """Release implementation resources (sockets, …).  Called once,
        after the closed flag is set."""

    def reset(self) -> None:
        """Zero the counters (fresh measurement window)."""
        with self._lock:
            self.total_bytes = 0
            self.total_seconds = 0.0
            self.messages = 0
            self.lost_messages = 0
            self.lost_bytes = 0

    def _ensure_open(self) -> None:
        with self._lock:
            if self._closed:
                raise TransportError(
                    f"{type(self).__name__} is closed "
                    "(send after close)"
                )

    def _account(self, size_bytes: int, seconds: float,
                 lost: bool = False) -> None:
        with self._lock:
            self.total_bytes += size_bytes
            self.total_seconds += seconds
            self.messages += 1
            if lost:
                self.lost_messages += 1
                self.lost_bytes += size_bytes

    # -- cost interface (used by probes) ----------------------------------------

    def transfer_cost(self, size_bytes: float) -> float:
        """Seconds to move ``size_bytes`` over this link."""
        return (
            self.profile.latency_seconds
            + size_bytes / self.profile.bandwidth_bytes_per_second
        )

    # -- accounting hooks (used by fault injection) ------------------------------

    def _charge(self, size_bytes: int, lost: bool = False) -> Shipment:
        """Account one wire transmission of ``size_bytes``, charging
        :meth:`transfer_cost` seconds.  Raises after :meth:`close`."""
        self._ensure_open()
        started = time.perf_counter()
        seconds = self.transfer_cost(size_bytes)
        self._account(size_bytes, seconds, lost=lost)
        # Span duration is the *simulated* transfer time — the wire
        # span shows what the link charged, not bookkeeping overhead.
        self.tracer.record(
            "wire", "wire", start=started, seconds=seconds,
            bytes=size_bytes,
        )
        return Shipment(size_bytes, seconds)

    def charge_lost(self, size_bytes: int) -> Shipment:
        """Account a transmission that consumed the wire but delivered
        nothing usable — a dropped or corrupted message, or the
        discarded copy of a duplicate.

        Failed and retried sends burn bandwidth and link time exactly
        like successful ones; without this accounting a lossy run would
        understate its communication cost by every wasted transmission.
        """
        return self._charge(size_bytes, lost=True)

    def charge_delay(self, seconds: float) -> None:
        """Account extra in-flight time (an injected delivery delay)."""
        with self._lock:
            self.total_seconds += seconds

    # -- shipping ----------------------------------------------------------------

    def ship_fragment(self, instance: FragmentInstance) -> Shipment:
        """Ship one fragment feed (cross-edge traffic).

        In wire format the feed is SOAP-encoded, charged at its actual
        message size, decoded again, and the decoded rows *replace* the
        instance's rows — so downstream operations consume exactly what
        crossed the network.
        """
        if not self.wire_format:
            # Fragments travel as tabular sorted feeds (Section 4.1).
            return self._charge(instance.feed_size())
        message = wrap_fragment_feed(instance)
        shipment = self._charge(len(message))
        received = unwrap_fragment_feed(message, instance.fragment)
        instance.rows[:] = received.rows
        return shipment

    def ship_batch(self, batch: RowBatch) -> Shipment:
        """Ship one batch of a fragment feed (chunked cross-edge
        traffic of the streaming dataplane).

        Each batch is one message: it pays the per-message latency —
        finer batching buys pipelining at the price of more handshakes,
        exactly the chunk-size trade-off of a streamed transfer.  Wire
        format encodes/decodes the batch like :meth:`ship_fragment`
        does the whole feed, replacing the batch's rows with what
        crossed the network.
        """
        if not self.wire_format:
            return self._charge(batch.feed_size())
        instance = FragmentInstance(batch.fragment, batch.rows)
        message = wrap_fragment_feed(instance, seq=batch.seq)
        shipment = self._charge(len(message))
        received = unwrap_fragment_feed(message, batch.fragment)
        batch.rows[:] = received.rows
        return shipment

    def ship_document(self, text: str) -> Shipment:
        """Ship a whole published document (publish&map step 3)."""
        return self._charge(len(text))


class SimulatedChannel(Transport):
    """Simulated channel charging ``latency + bytes / bandwidth``.

    Two fidelity levels: the default counts bytes from the instance's
    estimated size (fast); ``wire_format=True`` actually serializes
    each fragment feed into its SOAP message and parses it back on the
    other side.  With ``realtime=True`` every send also *sleeps* its
    simulated transfer time, so a measured wall clock feels the link;
    concurrent sends sleep concurrently, modelling one transfer stream
    per in-flight fragment.
    """

    def __init__(self, profile: NetworkProfile | None = None,
                 wire_format: bool = False,
                 realtime: bool = False,
                 tracer: Tracer | None = None) -> None:
        super().__init__(profile, wire_format, tracer)
        self.realtime = realtime

    def _charge(self, size_bytes: int, lost: bool = False) -> Shipment:
        shipment = super()._charge(size_bytes, lost=lost)
        if self.realtime:
            # In realtime mode the simulated transfer time equals the
            # wall time slept.
            time.sleep(shipment.seconds)
        return shipment

    def charge_delay(self, seconds: float) -> None:
        super().charge_delay(seconds)
        if self.realtime:
            time.sleep(seconds)


class InProcessTransport(Transport):
    """Zero-cost transport: bytes are counted, no time is charged.

    The degenerate perfect-LAN link — what the executors' implicit
    default channel models, promoted to a full :class:`Transport` so
    zero-cost runs still get byte accounting, close enforcement, and
    (optionally) the true SOAP encode/decode path of ``wire_format``.
    """

    def __init__(self, wire_format: bool = False,
                 tracer: Tracer | None = None) -> None:
        super().__init__(LOOPBACK_PROFILE, wire_format, tracer)

    def transfer_cost(self, size_bytes: float) -> float:
        """An in-process hop is free."""
        return 0.0


class TcpTransport(Transport):
    """Length-prefixed SOAP envelopes over a real TCP socket.

    Every send frames one SOAP message (4-byte big-endian length +
    UTF-8 envelope), writes it to the socket, and waits for the
    receiver's length-prefixed reply — an ``Ack`` envelope carrying the
    receiver-side verification (fragment name, row count, and the
    Adler-32 feed checksum the receiver recomputed), or a SOAP
    ``Fault`` that surfaces here as :class:`~repro.errors.SoapFault`.
    The peer is a :class:`repro.net.server.FeedSink` (or anything
    speaking the same framing).

    Accounting is *measured*: ``total_seconds`` accumulates the actual
    wall time of each round trip and ``total_bytes`` the payload bytes
    sent.  ``transfer_cost`` (the probes' question) answers from
    ``profile`` — default :data:`LOOPBACK_PROFILE`.

    Wire format is always on — the wire is real — and, like the
    simulated wire path, the decoded rows replace the shipped
    instance's rows so downstream operations consume exactly what
    crossed the network.  Round trips are serialized per transport
    (one in-flight message per connection); concurrent sessions get
    their own connections.
    """

    def __init__(self, sock: socket.socket,
                 profile: NetworkProfile | None = None,
                 tracer: Tracer | None = None) -> None:
        super().__init__(profile or LOOPBACK_PROFILE, True, tracer)
        self._sock = sock
        self._io_lock = threading.Lock()
        try:
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        except OSError:  # pragma: no cover - platform-dependent
            pass

    @classmethod
    def connect(cls, host: str, port: int, *,
                timeout: float | None = 10.0,
                profile: NetworkProfile | None = None,
                tracer: Tracer | None = None) -> "TcpTransport":
        """Open a connection to a feed sink at ``host:port``.

        Raises:
            TransportError: if the connection cannot be established.
        """
        try:
            sock = socket.create_connection((host, port),
                                            timeout=timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to feed sink at {host}:{port}: {exc}"
            ) from exc
        return cls(sock, profile=profile, tracer=tracer)

    def _on_close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def _roundtrip(self, message: str) -> Shipment:
        """Send one framed SOAP message, await and verify the reply.

        Raises:
            TransportError: on socket failure or send-after-close.
            SoapFault: when the receiver replies with a SOAP Fault
                (its verification rejected the message).
        """
        from repro.net.soap import parse_envelope

        self._ensure_open()
        payload = message.encode("utf-8")
        started = time.perf_counter()
        try:
            with self._io_lock:
                send_frame(self._sock, payload)
                reply = recv_frame(self._sock)
        except OSError as exc:
            raise TransportError(
                f"socket send failed: {exc}"
            ) from exc
        if reply is None:
            raise TransportError(
                "feed sink closed the connection before replying"
            )
        seconds = time.perf_counter() - started
        self._account(len(payload), seconds)
        self.tracer.record(
            "wire", "wire", start=started, seconds=seconds,
            bytes=len(payload),
        )
        # Raises SoapFault when the receiver rejected the message.
        parse_envelope(reply.decode("utf-8"))
        return Shipment(len(payload), seconds)

    def _charge(self, size_bytes: int, lost: bool = False) -> Shipment:
        """Account a transmission that never reaches the socket (the
        fault injector charging a dropped/duplicated copy): bytes are
        real, time is the profile's estimate — there was no round trip
        to measure."""
        self._ensure_open()
        seconds = self.transfer_cost(size_bytes)
        self._account(size_bytes, seconds, lost=lost)
        return Shipment(size_bytes, seconds)

    def ship_fragment(self, instance: FragmentInstance) -> Shipment:
        message = wrap_fragment_feed(instance)
        shipment = self._roundtrip(message)
        received = unwrap_fragment_feed(message, instance.fragment)
        instance.rows[:] = received.rows
        return shipment

    def ship_batch(self, batch: RowBatch) -> Shipment:
        instance = FragmentInstance(batch.fragment, batch.rows)
        message = wrap_fragment_feed(instance, seq=batch.seq)
        shipment = self._roundtrip(message)
        received = unwrap_fragment_feed(message, batch.fragment)
        batch.rows[:] = received.rows
        return shipment

    def ship_document(self, text: str) -> Shipment:
        return self._roundtrip(wrap_document(text))
