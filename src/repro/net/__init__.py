"""Network substrate: SOAP framing, pluggable transports, and faults.

The paper deploys its service over SOAP 1.1 / HTTP between two machines
connected through the Internet; here :mod:`repro.net.soap` provides the
envelope codec (fragment feeds and whole documents travel as SOAP
bodies with content checksums and sequence numbers),
:mod:`repro.net.transport` the pluggable :class:`Transport` stack — a
:class:`SimulatedChannel` that charges bytes against a configured
bandwidth/latency (the measured quantity behind Table 3), a zero-cost
:class:`InProcessTransport`, and a :class:`TcpTransport` moving
length-prefixed envelopes over real sockets — and
:mod:`repro.net.faults` a deterministic lossy-channel wrapper plus the
retry/de-duplication/re-ordering layer that heals it.

The service tier lives in :mod:`repro.net.server` (SOAP-over-HTTP
discovery agency + feed endpoints on real sockets) and
:mod:`repro.net.loadgen` (the concurrent load harness); both import
the services layer, so they are deliberately *not* re-exported here.
"""

from repro.net.faults import (
    FaultKind,
    FaultPlan,
    FaultyChannel,
    ReliableBatchLink,
    ReliableChannel,
    RetryPolicy,
    RobustnessStats,
)
from repro.net.soap import (
    parse_envelope,
    soap_envelope,
    soap_fault,
    unwrap_document,
    unwrap_fragment_feed,
    verify_fragment_feed,
    wrap_document,
    wrap_fragment_feed,
)
from repro.net.transport import (
    InProcessTransport,
    NetworkProfile,
    SimulatedChannel,
    TcpTransport,
    Transport,
    recv_frame,
    send_frame,
)

__all__ = [
    "NetworkProfile",
    "Transport",
    "SimulatedChannel",
    "InProcessTransport",
    "TcpTransport",
    "send_frame",
    "recv_frame",
    "FaultKind",
    "FaultPlan",
    "FaultyChannel",
    "RetryPolicy",
    "ReliableChannel",
    "ReliableBatchLink",
    "RobustnessStats",
    "soap_envelope",
    "soap_fault",
    "parse_envelope",
    "wrap_fragment_feed",
    "unwrap_fragment_feed",
    "wrap_document",
    "unwrap_document",
    "verify_fragment_feed",
]
