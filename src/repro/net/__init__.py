"""Network substrate: SOAP framing, a simulated transport, and faults.

The paper deploys its service over SOAP 1.1 / HTTP between two machines
connected through the Internet; here :mod:`repro.net.soap` provides the
envelope codec (fragment feeds and whole documents travel as SOAP
bodies with content checksums and sequence numbers),
:mod:`repro.net.transport` a channel that charges bytes against a
configured bandwidth/latency — the measured quantity behind Table 3 —
and :mod:`repro.net.faults` a deterministic lossy-channel wrapper plus
the retry/de-duplication/re-ordering layer that heals it.
"""

from repro.net.faults import (
    FaultKind,
    FaultPlan,
    FaultyChannel,
    ReliableBatchLink,
    ReliableChannel,
    RetryPolicy,
    RobustnessStats,
)
from repro.net.soap import (
    parse_envelope,
    soap_envelope,
    unwrap_fragment_feed,
    wrap_fragment_feed,
)
from repro.net.transport import NetworkProfile, SimulatedChannel

__all__ = [
    "NetworkProfile",
    "SimulatedChannel",
    "FaultKind",
    "FaultPlan",
    "FaultyChannel",
    "RetryPolicy",
    "ReliableChannel",
    "ReliableBatchLink",
    "RobustnessStats",
    "soap_envelope",
    "parse_envelope",
    "wrap_fragment_feed",
    "unwrap_fragment_feed",
]
