"""The real service tier: a networked deployment of the architecture.

The paper's deployment is a *Web-services* one — a discovery agency and
exchange endpoints speaking SOAP over HTTP (Figure 2).  This module
stands that up on real sockets:

* :class:`FeedSink` — the data-plane receiver
  :class:`~repro.net.transport.TcpTransport` ships to: a threaded
  socket server reading length-prefixed SOAP envelopes, verifying each
  fragment feed's declared row count and Adler-32 content checksum
  (:func:`~repro.net.soap.verify_fragment_feed`), and replying with an
  ``Ack`` envelope — or a SOAP ``Fault`` when verification rejects the
  message.
* :class:`ExchangeHttpServer` — the control plane: a threaded HTTP
  server exposing the discovery agency (``Register`` / ``Negotiate``,
  step 1/2 of Figure 2) and the exchange endpoints (fragment-feed
  upload/download) as SOAP services under ``/soap/agency`` and
  ``/soap/feeds``.
* :class:`ExchangeServer` — both planes under one lifecycle, which is
  what ``python -m repro serve`` runs and what the load harness
  (:mod:`repro.net.loadgen`) drives.
* :class:`SoapHttpClient` — the matching stdlib-only client.

Both servers shut down gracefully (stop accepting, drain handler
threads, close connections; ``stop()`` is idempotent) and meter
themselves into a :class:`~repro.obs.metrics.MetricsRegistry` under
``server.*`` names, with per-message ``server`` spans on a tracer.
"""

from __future__ import annotations

import http.client
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.errors import (
    NegotiationError,
    ShardingError,
    SoapFault,
    TransportError,
)
from repro.core.fragment import Fragment
from repro.core.instance import FragmentInstance
from repro.core.partition import STRATEGIES, resolve_grains
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.serialize import (
    program_from_json,
    program_to_json,
)
from repro.net.soap import (
    parse_envelope,
    soap_envelope,
    soap_fault,
    unwrap_fragment_feed,
    verify_fragment_feed,
    wrap_fragment_feed,
)
from repro.net.transport import recv_frame, send_frame
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.xmlkit.tree import Element

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.adapt.stats import StatisticsStore
    from repro.core.cost.probe import CostProbe
    from repro.schema.model import SchemaTree
    from repro.services.agency import DiscoveryAgency

__all__ = [
    "FeedSink",
    "ExchangeHttpServer",
    "ExchangeServer",
    "SoapHttpClient",
]

#: How long ``stop()`` waits for each handler thread to drain.
_JOIN_TIMEOUT_SECONDS = 5.0


class FeedSink:
    """Data-plane receiver for framed SOAP feed/document messages.

    One handler thread per connection; each connection serves any
    number of messages (the transport keeps its socket for the whole
    exchange).  Every message is verified — a feed whose checksum or
    row count does not match its declaration gets a ``Fault`` reply,
    never a silent ack — and metered (``server.connections``,
    ``server.messages``, ``server.bytes_in``, ``server.faults``, plus
    the ``server.open_connections`` gauge).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._running = False
        self._accept_thread: threading.Thread | None = None
        self._handlers: set[threading.Thread] = set()
        self._connections: set[socket.socket] = set()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "FeedSink":
        """Begin accepting connections (idempotent)."""
        with self._lock:
            if self._running:
                return self
            self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="feed-sink-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, close live connections,
        and drain handler threads.  Idempotent."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            connections = list(self._connections)
            handlers = list(self._handlers)
        # shutdown() wakes a thread blocked in accept() immediately;
        # close() alone would leave the listening socket alive in the
        # kernel until the next connection arrived.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=_JOIN_TIMEOUT_SECONDS)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for handler in handlers:
            handler.join(timeout=_JOIN_TIMEOUT_SECONDS)

    def __enter__(self) -> "FeedSink":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).add(amount)

    # -- the accept / serve loops ----------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed: shutdown
                return
            with self._lock:
                if not self._running:
                    conn.close()
                    return
                self._connections.add(conn)
            self._count("server.connections")
            if self.metrics is not None:
                self.metrics.gauge("server.open_connections").add(1)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="feed-sink-conn", daemon=True,
            )
            with self._lock:
                self._handlers.add(handler)
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except (TransportError, OSError):
                    break  # connection died mid-frame
                if frame is None:
                    break  # clean EOF: peer closed
                reply = self._handle_message(frame)
                try:
                    send_frame(conn, reply.encode("utf-8"))
                except OSError:
                    break
        finally:
            conn.close()
            with self._lock:
                self._connections.discard(conn)
                self._handlers.discard(threading.current_thread())
            if self.metrics is not None:
                self.metrics.gauge("server.open_connections").add(-1)

    def _handle_message(self, frame: bytes) -> str:
        """Verify one framed message; return the serialized reply."""
        self._count("server.messages")
        self._count("server.bytes_in", len(frame))
        with self.tracer.span("serve message", "server",
                              bytes=len(frame)):
            try:
                payload = parse_envelope(frame.decode("utf-8"))
                return self._ack(payload)
            except SoapFault as fault:
                self._count("server.faults")
                return soap_fault(str(fault))
            except (UnicodeDecodeError, ValueError) as exc:
                self._count("server.faults")
                return soap_fault(f"unreadable message: {exc}")

    def _ack(self, payload: Element) -> str:
        kind = payload.local_name()
        if kind == "FragmentFeed":
            name, count, digest = verify_fragment_feed(payload)
            attrs = {
                "of": "FragmentFeed",
                "fragment": name,
                "count": str(count),
                "checksum": digest,
            }
            seq = payload.get("seq")
            if seq is not None:
                attrs["seq"] = seq
            self._count("server.feeds")
            self._count("server.rows_in", count)
            return soap_envelope(Element("Ack", attrs))
        if kind == "Document":
            self._count("server.documents")
            return soap_envelope(Element("Ack", {
                "of": "Document",
                "bytes": str(len(payload.text)),
            }))
        raise SoapFault(f"feed sink cannot serve a <{payload.name}>")


# -- the SOAP-over-HTTP control plane ------------------------------------------------


class _SoapHttpHandler(BaseHTTPRequestHandler):
    """Routes ``POST`` bodies to the owning :class:`ExchangeHttpServer`."""

    server_version = "ReproExchange/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args: object) -> None:  # quiet by design
        pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, soap_fault(f"unreadable request: {exc}"))
            return
        status, reply = self.server.exchange.dispatch(self.path, body)  # type: ignore[attr-defined]
        self._reply(status, reply)

    def _reply(self, status: int, reply: str) -> None:
        payload = reply.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", 'text/xml; charset="utf-8"')
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class ExchangeHttpServer:
    """SOAP-over-HTTP discovery agency + exchange endpoints.

    Two routes, both ``POST`` with a SOAP envelope body:

    ``/soap/agency``
        ``<Register name="...">WSDL text</Register>`` registers a
        system from its serialized WSDL (with the fragmentation
        extension) on the wrapped agency; ``<Negotiate source=".."
        target=".." optimizer=".."/>`` runs a negotiation against the
        configured cost probe and replies with a ``NegotiateResult``
        whose text is the serialized program + placement
        (:mod:`repro.core.program.serialize` JSON).

    ``/soap/feeds``
        A ``FragmentFeed`` body uploads one verified feed into the
        server's feed store; ``<DownloadFeed fragment="..."/>``
        returns the stored feed message.

    Errors travel as SOAP ``Fault`` envelopes with HTTP 4xx/5xx.
    Requests are metered under ``server.http.*``.
    """

    def __init__(self, agency: "DiscoveryAgency", *,
                 host: str = "127.0.0.1", port: int = 0,
                 probe: "CostProbe | None" = None,
                 stats_store: "StatisticsStore | None" = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.agency = agency
        self.probe = probe
        self.stats_store = stats_store
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self._feeds: dict[str, str] = {}
        self._feeds_lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port),
                                          _SoapHttpHandler)
        self._httpd.daemon_threads = True
        self._httpd.exchange = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ExchangeHttpServer":
        """Serve in a background thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="exchange-http", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown; idempotent."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=_JOIN_TIMEOUT_SECONDS)
        self._thread = None

    def __enter__(self) -> "ExchangeHttpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).add(amount)

    # -- dispatch --------------------------------------------------------------

    def dispatch(self, path: str, body: str) -> tuple[int, str]:
        """Serve one SOAP request; returns ``(status, reply text)``."""
        self._count("server.http.requests")
        try:
            payload = parse_envelope(body)
        except SoapFault as fault:
            self._count("server.http.faults")
            return 400, soap_fault(str(fault))
        with self.tracer.span(f"http {path}", "server",
                              action=payload.local_name()):
            try:
                if path == "/soap/agency":
                    return 200, self._serve_agency(payload)
                if path == "/soap/feeds":
                    return 200, self._serve_feeds(payload)
                raise SoapFault(f"no service at {path}", )
            except (SoapFault, NegotiationError) as exc:
                self._count("server.http.faults")
                status = 404 if "no service" in str(exc) else 500
                return status, soap_fault(str(exc))

    def _serve_agency(self, payload: Element) -> str:
        action = payload.local_name()
        if action == "Register":
            name = payload.get("name")
            if not name:
                raise SoapFault("Register names no system")
            registration = self.agency.register_wsdl(
                name, payload.text
            )
            return soap_envelope(Element("RegisterResult", {
                "name": registration.name,
                "fragments": str(
                    len(registration.fragmentation.fragments)
                ),
            }))
        if action == "Negotiate":
            source = payload.get("source")
            target = payload.get("target")
            if not source or not target:
                raise SoapFault(
                    "Negotiate needs source and target attributes"
                )
            if self.probe is None:
                raise SoapFault(
                    "this agency endpoint has no cost probe "
                    "configured; negotiation is unavailable"
                )
            # Shard routing: a requester planning a scatter/gather
            # exchange announces its shard count up front; the agency
            # validates that the registered fragmentation pair can
            # shard and advertises the grain elements back, so every
            # shard session negotiates the same cut.
            shards_attr = payload.get("shards")
            shard_by = payload.get("shard-by", "key-range")
            grains: tuple[str, ...] = ()
            if shards_attr is not None:
                try:
                    shards = int(shards_attr)
                except ValueError:
                    raise SoapFault(
                        f"Negotiate shards must be an integer, got "
                        f"{shards_attr!r}"
                    ) from None
                if shards < 1:
                    raise SoapFault(
                        f"Negotiate shards must be >= 1, got {shards}"
                    )
                if shard_by not in STRATEGIES:
                    raise SoapFault(
                        f"unknown shard-by strategy {shard_by!r}; "
                        f"expected one of {STRATEGIES}"
                    )
                try:
                    grain_plan = resolve_grains(
                        self.agency.registration(
                            source
                        ).fragmentation,
                        self.agency.registration(
                            target
                        ).fragmentation,
                    )
                except ShardingError as exc:
                    raise SoapFault(
                        f"the {source!r} -> {target!r} pair cannot "
                        f"shard: {exc}"
                    ) from exc
                grains = grain_plan.grains
                self._count("server.http.shard_negotiations")
            plan = self.agency.negotiate(
                source, target,
                optimizer=payload.get("optimizer", "greedy"),
                probe=self.probe,
                stats_store=self.stats_store,
            )
            self._count("server.http.negotiations")
            attributes = {
                "source": source,
                "target": target,
                "optimizer": plan.optimizer,
                "estimated-cost": f"{plan.estimated_cost:.9g}",
            }
            if shards_attr is not None:
                attributes["shards"] = str(shards)
                attributes["shard-by"] = shard_by
                attributes["grains"] = " ".join(grains)
            return soap_envelope(Element(
                "NegotiateResult", attributes,
                text=program_to_json(plan.program, plan.placement),
            ))
        if action == "StatsSummary":
            # Adaptive control plane: the learned per-pair statistics
            # (EWMA scales, observation counts, confidence) as a JSON
            # payload — operators watch what the substrate taught us.
            import json as _json

            if self.stats_store is None:
                raise SoapFault(
                    "this agency endpoint has no statistics store "
                    "attached; adaptive statistics are unavailable"
                )
            self._count("server.http.stats_summaries")
            return soap_envelope(Element(
                "StatsSummaryResult",
                {"pairs": str(len(self.stats_store.pairs()))},
                text=_json.dumps(self.stats_store.summary(),
                                 sort_keys=True),
            ))
        raise SoapFault(f"agency cannot serve a <{payload.name}>")

    def _serve_feeds(self, payload: Element) -> str:
        action = payload.local_name()
        if action == "FragmentFeed":
            name, count, digest = verify_fragment_feed(payload)
            with self._feeds_lock:
                self._feeds[name] = soap_envelope(payload)
            self._count("server.http.feeds_uploaded")
            return soap_envelope(Element("Ack", {
                "of": "FragmentFeed", "fragment": name,
                "count": str(count), "checksum": digest,
            }))
        if action == "DownloadFeed":
            name = payload.get("fragment")
            if not name:
                raise SoapFault("DownloadFeed names no fragment")
            with self._feeds_lock:
                stored = self._feeds.get(name)
            if stored is None:
                raise SoapFault(
                    f"no feed of fragment {name!r} has been uploaded"
                )
            self._count("server.http.feeds_downloaded")
            return stored
        raise SoapFault(
            f"feed endpoint cannot serve a <{payload.name}>"
        )


class SoapHttpClient:
    """Stdlib-only client for :class:`ExchangeHttpServer`.

    One short-lived HTTP connection per call (the control plane is
    low-rate; the data plane uses persistent
    :class:`~repro.net.transport.TcpTransport` connections instead).
    SOAP ``Fault`` replies raise :class:`~repro.errors.SoapFault`.
    """

    def __init__(self, host: str, port: int,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def call(self, path: str, envelope: str) -> Element:
        """POST one SOAP envelope; return the reply's body payload."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST", path, body=envelope.encode("utf-8"),
                headers={"Content-Type": 'text/xml; charset="utf-8"'},
            )
            response = connection.getresponse()
            reply = response.read().decode("utf-8")
        except OSError as exc:
            raise TransportError(
                f"HTTP call to {self.host}:{self.port}{path} "
                f"failed: {exc}"
            ) from exc
        finally:
            connection.close()
        return parse_envelope(reply)  # Fault replies raise here

    # -- agency actions --------------------------------------------------------

    def register(self, name: str, wsdl_text: str) -> Element:
        """Register a system from its WSDL registration document."""
        return self.call("/soap/agency", soap_envelope(
            Element("Register", {"name": name}, text=wsdl_text)
        ))

    def negotiate(self, source: str, target: str,
                  schema: "SchemaTree", *,
                  optimizer: str = "greedy",
                  shards: int | None = None,
                  shard_by: str = "key-range"
                  ) -> tuple[TransferProgram, Placement, Element]:
        """Negotiate a plan; returns the deserialized program and
        placement plus the raw ``NegotiateResult`` element.

        ``shards`` announces a scatter/gather exchange: the server
        validates the pair can shard and the result element carries
        ``shards`` / ``shard-by`` / ``grains`` attributes (the grain
        elements, space-separated) for the coordinator to cut by."""
        attributes = {
            "source": source, "target": target,
            "optimizer": optimizer,
        }
        if shards is not None:
            attributes["shards"] = str(shards)
            attributes["shard-by"] = shard_by
        result = self.call("/soap/agency", soap_envelope(
            Element("Negotiate", attributes)
        ))
        program, placement = program_from_json(result.text, schema)
        if placement is None:
            raise SoapFault(
                "NegotiateResult carried a program without placement"
            )
        return program, placement, result

    def stats_summary(self) -> dict:
        """The server's learned adaptive statistics
        (:meth:`~repro.adapt.stats.StatisticsStore.summary`) as a
        JSON-decoded dict."""
        import json as _json

        result = self.call("/soap/agency", soap_envelope(
            Element("StatsSummary", {})
        ))
        return _json.loads(result.text)

    # -- feed actions ----------------------------------------------------------

    def upload_feed(self, instance: FragmentInstance) -> Element:
        """Upload one fragment feed to the exchange endpoint."""
        return self.call("/soap/feeds",
                         wrap_fragment_feed(instance))

    def download_feed(self, fragment: Fragment) -> FragmentInstance:
        """Download the stored feed of ``fragment``."""
        result = self.call("/soap/feeds", soap_envelope(
            Element("DownloadFeed", {"fragment": fragment.name})
        ))
        return unwrap_fragment_feed(soap_envelope(result), fragment)


class ExchangeServer:
    """Both planes of the service tier under one lifecycle.

    The control plane (:class:`ExchangeHttpServer`) and the data plane
    (:class:`FeedSink`) share one metrics registry and tracer; ``with
    ExchangeServer(...) as server:`` brings both up and tears both
    down gracefully.
    """

    def __init__(self, agency: "DiscoveryAgency", *,
                 host: str = "127.0.0.1",
                 http_port: int = 0, feed_port: int = 0,
                 probe: "CostProbe | None" = None,
                 stats_store: "StatisticsStore | None" = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.http = ExchangeHttpServer(
            agency, host=host, port=http_port, probe=probe,
            stats_store=stats_store,
            metrics=metrics, tracer=self.tracer,
        )
        self.sink = FeedSink(
            host, feed_port, metrics=metrics, tracer=self.tracer,
        )

    @property
    def http_address(self) -> tuple[str, int]:
        """The control plane's ``(host, port)``."""
        return self.http.host, self.http.port

    @property
    def feed_address(self) -> tuple[str, int]:
        """The data plane's ``(host, port)``."""
        return self.sink.host, self.sink.port

    def start(self) -> "ExchangeServer":
        """Start both planes (idempotent)."""
        self.http.start()
        self.sink.start()
        return self

    def stop(self) -> None:
        """Stop both planes gracefully (idempotent)."""
        self.sink.stop()
        self.http.stop()

    def __enter__(self) -> "ExchangeServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
