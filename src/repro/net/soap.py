"""SOAP 1.1 envelopes for fragment feeds and documents.

Fragment feeds are shipped as a sequence of fragment-instance documents
inside one SOAP body.  The wire format preserves element ids (a ``_eid``
attribute on every element) exactly as a sorted-feed shipment carries
its keys/foreign keys in the paper's setting; ``ID``/``PARENT`` appear
on fragment roots per Definition 3.1.

Every feed message additionally carries an Adler-32 ``checksum`` of its
row content and, for chunked streaming transfers, a ``seq`` number —
the receiver verifies the checksum (corruption in flight surfaces as a
:class:`~repro.errors.SoapFault` instead of silently wrong data) and
the sequence numbers let the reliable shipping layer de-duplicate and
re-order deliveries (see :mod:`repro.net.faults`).
"""

from __future__ import annotations

import zlib

from repro.errors import SoapFault
from repro.core.fragment import ID_ATTR, PARENT_ATTR, Fragment
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.xmlkit.tree import Element, parse_tree
from repro.xmlkit.writer import serialize

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"
_EID_ATTR = "_eid"
CHECKSUM_ATTR = "checksum"
SEQ_ATTR = "seq"


def soap_envelope(body: Element) -> str:
    """Wrap ``body`` in a SOAP 1.1 envelope and serialize."""
    envelope = Element(
        "soap:Envelope", {"xmlns:soap": ENVELOPE_NS}
    )
    envelope.append(Element("soap:Body")).append(body)
    return serialize(envelope, indent=None)


def parse_envelope(text: str) -> Element:
    """Parse a SOAP envelope and return the single body child.

    Raises:
        SoapFault: if the message is not a well-formed SOAP envelope or
            the body carries a ``Fault``.
    """
    root = parse_tree(text)
    if root.local_name() != "Envelope":
        raise SoapFault(f"not a SOAP envelope: <{root.name}>")
    body = next(
        (child for child in root.children
         if child.local_name() == "Body"),
        None,
    )
    if body is None or len(body.children) != 1:
        raise SoapFault("SOAP body must contain exactly one element")
    payload = body.children[0]
    if payload.local_name() == "Fault":
        fault_string = payload.child("faultstring")
        raise SoapFault(fault_string.text if fault_string else "fault")
    return payload


def _element_to_wire(data: ElementData,
                     expose_parent: int | None = None,
                     expose: bool = False) -> Element:
    attrs = dict(data.attrs)
    attrs[_EID_ATTR] = str(data.eid)
    if expose:
        attrs[ID_ATTR] = str(data.eid)
        attrs[PARENT_ATTR] = (
            "" if expose_parent is None else str(expose_parent)
        )
    element = Element(data.name, attrs, text=data.text)
    for group in data.children.values():
        for child in group:
            element.children.append(_element_to_wire(child))
    return element


def _element_from_wire(element: Element) -> ElementData:
    attrs = dict(element.attrs)
    try:
        eid = int(attrs.pop(_EID_ATTR))
    except KeyError as exc:
        raise SoapFault(
            f"wire element <{element.name}> is missing its {_EID_ATTR}"
        ) from exc
    attrs.pop(ID_ATTR, None)
    attrs.pop(PARENT_ATTR, None)
    data = ElementData(element.name, eid, attrs, element.text)
    for child in element.children:
        data.add_child(_element_from_wire(child))
    return data


def feed_digest(rows: list[Element]) -> str:
    """Adler-32 digest over the canonical serialization of wire rows.

    The wire serializer is deterministic (fixed attribute and child
    order), so re-serializing the rows a receiver parsed reproduces the
    sender's bytes — any in-flight mutation of row content changes the
    digest.
    """
    blob = "".join(serialize(row, indent=None) for row in rows)
    return format(zlib.adler32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


def wrap_fragment_feed(instance: FragmentInstance,
                       seq: int | None = None) -> str:
    """Serialize a fragment instance as one SOAP message.

    The message carries a content ``checksum``; ``seq`` (set for
    chunked streaming transfers) numbers this message within its feed.
    """
    attrs = {
        "fragment": instance.fragment.name,
        "count": str(instance.row_count()),
    }
    if seq is not None:
        attrs[SEQ_ATTR] = str(seq)
    feed = Element("FragmentFeed", attrs)
    for row in instance.rows:
        feed.children.append(
            _element_to_wire(row.data, row.parent, expose=True)
        )
    feed.attrs[CHECKSUM_ATTR] = feed_digest(feed.children)
    return soap_envelope(feed)


def unwrap_fragment_feed(text: str,
                         fragment: Fragment) -> FragmentInstance:
    """Parse a SOAP fragment-feed message back into an instance.

    Raises:
        SoapFault: on structural problems (wrong fragment, bad counts,
            missing keys).
    """
    payload = parse_envelope(text)
    if payload.local_name() != "FragmentFeed":
        raise SoapFault(f"expected a FragmentFeed, got <{payload.name}>")
    declared = payload.get("fragment")
    if declared != fragment.name:
        raise SoapFault(
            f"feed carries fragment {declared!r}, expected "
            f"{fragment.name!r}"
        )
    declared_digest = payload.get(CHECKSUM_ATTR)
    if declared_digest is not None \
            and declared_digest != feed_digest(payload.children):
        raise SoapFault(
            f"feed of fragment {declared!r} failed its checksum "
            "(message corrupted in flight)"
        )
    rows: list[FragmentRow] = []
    for child in payload.children:
        parent_raw = child.get(PARENT_ATTR, "")
        parent = int(parent_raw) if parent_raw else None
        rows.append(FragmentRow(_element_from_wire(child), parent))
    declared_count = payload.get("count")
    if declared_count is not None and int(declared_count) != len(rows):
        raise SoapFault(
            f"feed declares {declared_count} rows but carries {len(rows)}"
        )
    return FragmentInstance(fragment, rows)
