"""SOAP 1.1 envelopes for fragment feeds and documents.

Fragment feeds are shipped as a sequence of fragment-instance documents
inside one SOAP body.  The wire format preserves element ids (a ``_eid``
attribute on every element) exactly as a sorted-feed shipment carries
its keys/foreign keys in the paper's setting; ``ID``/``PARENT`` appear
on fragment roots per Definition 3.1.

Every feed message additionally carries an Adler-32 ``checksum`` of its
row content and, for chunked streaming transfers, a ``seq`` number —
the receiver verifies the checksum (corruption in flight surfaces as a
:class:`~repro.errors.SoapFault` instead of silently wrong data) and
the sequence numbers let the reliable shipping layer de-duplicate and
re-order deliveries (see :mod:`repro.net.faults`).
"""

from __future__ import annotations

import zlib

from repro.errors import SoapFault
from repro.core.fragment import ID_ATTR, PARENT_ATTR, Fragment
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.xmlkit.tree import Element, parse_tree
from repro.xmlkit.writer import serialize

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"
_EID_ATTR = "_eid"
CHECKSUM_ATTR = "checksum"
SEQ_ATTR = "seq"


def soap_envelope(body: Element) -> str:
    """Wrap ``body`` in a SOAP 1.1 envelope and serialize."""
    envelope = Element(
        "soap:Envelope", {"xmlns:soap": ENVELOPE_NS}
    )
    envelope.append(Element("soap:Body")).append(body)
    return serialize(envelope, indent=None)


def soap_fault(message: str, code: str = "soap:Server") -> str:
    """A serialized SOAP 1.1 Fault envelope (a service-side error).

    Receivers reply with one of these when a request fails
    verification; :func:`parse_envelope` on the other side raises the
    carried message as a :class:`~repro.errors.SoapFault`.
    """
    fault = Element("soap:Fault")
    fault.append(Element("faultcode", text=code))
    fault.append(Element("faultstring", text=message))
    return soap_envelope(fault)


def _fault_message(payload: Element) -> str:
    """Extract the human-readable message from a ``Fault`` payload.

    Real-world faults nest: the ``detail`` element may itself carry a
    ``Fault`` from a downstream hop.  The innermost ``faultstring``
    wins — it names the root cause — with outer strings appended for
    context.
    """
    strings: list[str] = []
    node: Element | None = payload
    while node is not None:
        fault_string = node.child("faultstring")
        if fault_string is not None and fault_string.text:
            strings.append(fault_string.text)
        detail = node.child("detail")
        node = detail.child("Fault") if detail is not None else None
    if not strings:
        return "fault"
    # Innermost first: it is the root cause.
    return ": ".join(reversed(strings))


def parse_envelope(text: str) -> Element:
    """Parse a SOAP envelope and return the single body child.

    Raises:
        SoapFault: if the message is not a well-formed SOAP envelope,
            the body does not carry exactly one element, or it carries
            a ``Fault`` (whose ``faultstring`` — innermost, for nested
            faults — becomes the raised message).
    """
    try:
        root = parse_tree(text)
    except Exception as exc:
        raise SoapFault(f"message is not well-formed XML: {exc}") from exc
    if root.local_name() != "Envelope":
        raise SoapFault(f"not a SOAP envelope: <{root.name}>")
    body = next(
        (child for child in root.children
         if child.local_name() == "Body"),
        None,
    )
    if body is None or len(body.children) != 1:
        raise SoapFault("SOAP body must contain exactly one element")
    payload = body.children[0]
    if payload.local_name() == "Fault":
        raise SoapFault(_fault_message(payload))
    return payload


def _element_to_wire(data: ElementData,
                     expose_parent: int | None = None,
                     expose: bool = False) -> Element:
    attrs = dict(data.attrs)
    attrs[_EID_ATTR] = str(data.eid)
    if expose:
        attrs[ID_ATTR] = str(data.eid)
        attrs[PARENT_ATTR] = (
            "" if expose_parent is None else str(expose_parent)
        )
    element = Element(data.name, attrs, text=data.text)
    for group in data.children.values():
        for child in group:
            element.children.append(_element_to_wire(child))
    return element


def _element_from_wire(element: Element) -> ElementData:
    attrs = dict(element.attrs)
    try:
        eid = int(attrs.pop(_EID_ATTR))
    except KeyError as exc:
        raise SoapFault(
            f"wire element <{element.name}> is missing its {_EID_ATTR}"
        ) from exc
    attrs.pop(ID_ATTR, None)
    attrs.pop(PARENT_ATTR, None)
    data = ElementData(element.name, eid, attrs, element.text)
    for child in element.children:
        data.add_child(_element_from_wire(child))
    return data


def feed_digest(rows: list[Element]) -> str:
    """Adler-32 digest over the canonical serialization of wire rows.

    The wire serializer is deterministic (fixed attribute and child
    order), so re-serializing the rows a receiver parsed reproduces the
    sender's bytes — any in-flight mutation of row content changes the
    digest.
    """
    blob = "".join(serialize(row, indent=None) for row in rows)
    return format(zlib.adler32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


def wrap_document(text: str) -> str:
    """Serialize a whole published document as one SOAP message
    (publish&map ships the tagged document monolithically).  The
    document travels as escaped character data with its byte count
    declared for receiver-side verification."""
    return soap_envelope(
        Element("Document", {"bytes": str(len(text))}, text=text)
    )


def unwrap_document(payload: Element) -> str:
    """Extract the document text from a ``Document`` payload.

    Raises:
        SoapFault: on a wrong payload or a byte-count mismatch.
    """
    if payload.local_name() != "Document":
        raise SoapFault(f"expected a Document, got <{payload.name}>")
    text = payload.text
    declared = payload.get("bytes")
    if declared is not None and int(declared) != len(text):
        raise SoapFault(
            f"document declares {declared} bytes but carries "
            f"{len(text)}"
        )
    return text


def verify_fragment_feed(payload: Element) -> tuple[str, int, str]:
    """Receiver-side structural verification of a ``FragmentFeed``.

    Unlike :func:`unwrap_fragment_feed` this needs no
    :class:`~repro.core.fragment.Fragment` — a network receiver (the
    :class:`~repro.net.server.FeedSink`) verifies what it *can* see:
    payload kind, declared row count, and the Adler-32 content checksum
    recomputed over the wire rows.  Returns ``(fragment name, row
    count, recomputed digest)``.

    Raises:
        SoapFault: on a wrong payload kind, a missing fragment name, a
            count mismatch, or a checksum mismatch.
    """
    if payload.local_name() != "FragmentFeed":
        raise SoapFault(
            f"expected a FragmentFeed, got <{payload.name}>"
        )
    name = payload.get("fragment")
    if not name:
        raise SoapFault("feed names no fragment")
    digest = feed_digest(payload.children)
    declared_digest = payload.get(CHECKSUM_ATTR)
    if declared_digest is not None and declared_digest != digest:
        raise SoapFault(
            f"feed of fragment {name!r} failed its checksum "
            "(message corrupted in flight)"
        )
    declared_count = payload.get("count")
    if declared_count is not None \
            and int(declared_count) != len(payload.children):
        raise SoapFault(
            f"feed declares {declared_count} rows but carries "
            f"{len(payload.children)}"
        )
    return name, len(payload.children), digest


def wrap_fragment_feed(instance: FragmentInstance,
                       seq: int | None = None) -> str:
    """Serialize a fragment instance as one SOAP message.

    The message carries a content ``checksum``; ``seq`` (set for
    chunked streaming transfers) numbers this message within its feed.
    """
    attrs = {
        "fragment": instance.fragment.name,
        "count": str(instance.row_count()),
    }
    if seq is not None:
        attrs[SEQ_ATTR] = str(seq)
    feed = Element("FragmentFeed", attrs)
    for row in instance.rows:
        feed.children.append(
            _element_to_wire(row.data, row.parent, expose=True)
        )
    feed.attrs[CHECKSUM_ATTR] = feed_digest(feed.children)
    return soap_envelope(feed)


def unwrap_fragment_feed(text: str,
                         fragment: Fragment) -> FragmentInstance:
    """Parse a SOAP fragment-feed message back into an instance.

    Raises:
        SoapFault: on structural problems (wrong fragment, bad counts,
            missing keys).
    """
    payload = parse_envelope(text)
    if payload.local_name() != "FragmentFeed":
        raise SoapFault(f"expected a FragmentFeed, got <{payload.name}>")
    declared = payload.get("fragment")
    if declared != fragment.name:
        raise SoapFault(
            f"feed carries fragment {declared!r}, expected "
            f"{fragment.name!r}"
        )
    declared_digest = payload.get(CHECKSUM_ATTR)
    if declared_digest is not None \
            and declared_digest != feed_digest(payload.children):
        raise SoapFault(
            f"feed of fragment {declared!r} failed its checksum "
            "(message corrupted in flight)"
        )
    rows: list[FragmentRow] = []
    for child in payload.children:
        parent_raw = child.get(PARENT_ATTR, "")
        parent = int(parent_raw) if parent_raw else None
        rows.append(FragmentRow(_element_from_wire(child), parent))
    declared_count = payload.get("count")
    if declared_count is not None and int(declared_count) != len(rows):
        raise SoapFault(
            f"feed declares {declared_count} rows but carries {len(rows)}"
        )
    return FragmentInstance(fragment, rows)
