"""Aligned text tables, used to print the paper's tables verbatim."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned text table.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = [[cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in rendered))
        if rendered else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(
            header.ljust(width)
            for header, width in zip(headers, widths)
        )
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            " | ".join(
                value.ljust(width)
                for value, width in zip(row, widths)
            )
        )
    return "\n".join(lines)
