"""Reporting helpers: aligned text tables and timers for the benches."""

from repro.reporting.tables import format_table
from repro.reporting.timers import Timer

__all__ = ["format_table", "Timer"]
