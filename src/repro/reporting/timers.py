"""A small wall-clock timer context manager."""

from __future__ import annotations

import time


class Timer:
    """Measure a block's elapsed time::

        with Timer() as timer:
            work()
        print(timer.seconds)
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._started
