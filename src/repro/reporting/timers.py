"""Wall-clock timers — thin shim over :mod:`repro.obs.metrics`.

The timing logic lives in :class:`repro.obs.metrics.Timer` (one
implementation, shared with the metrics registry); this module keeps
the historical import path ``repro.reporting.timers.Timer`` working.
"""

from __future__ import annotations

from repro.obs.metrics import Timer

__all__ = ["Timer"]
