"""Background re-optimization of cached exchange plans.

Before this module, a drift report past threshold could only
*invalidate* a cached plan (:meth:`~repro.services.broker.PlanCache.
note_drift`), so the next session paid a cold negotiation.  The
:class:`ReOptimizer` closes that gap: drift notifications enqueue the
discredited plan, a daemon thread re-runs the placement search off the
hot path — pricing with a :class:`~repro.adapt.replan.ScaledProbe`
corrected by the learned ratios (the
:class:`~repro.adapt.stats.StatisticsStore`'s smoothed view when one
is attached, the triggering report's otherwise) — and atomically swaps
the cached entry in place (:meth:`~repro.services.broker.PlanCache.
replace`).  Sessions keep hitting the *old* plan until the swap lands;
none ever sees a cache miss because of drift.

Each successful swap counts ``plan.reoptimized``; queueing counts
``adapt.reopt.queued`` and completed searches ``adapt.reopt.runs``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.adapt.replan import ScaledProbe
from repro.adapt.stats import StatisticsStore
from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.program.dag import Placement, TransferProgram
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.drift import DriftReport
    from repro.services.broker import PlanCache

__all__ = ["ReOptimizer", "ReOptimizationJob"]


@dataclass(slots=True)
class ReOptimizationJob:
    """One queued re-optimization request."""

    digest: str
    program: TransferProgram
    placement: Placement
    probe: CostProbe
    weights: CostWeights | None
    pair: str | None
    ratios: dict[str, float]


class ReOptimizer:
    """Re-optimize drifted cached plans on a background thread.

    Attach one to the broker (``ExchangeBroker(reoptimizer=...)``) or
    drive :meth:`note_drift` directly.  ``drift_threshold`` matches
    :meth:`~repro.services.broker.PlanCache.note_drift` semantics —
    the *spread* of the per-kind ratios, not uniform slowdown.  Use as
    a context manager, or call :meth:`close` when done; :meth:`drain`
    blocks until the queue is empty (tests and graceful shutdown).
    """

    def __init__(self, plan_cache: "PlanCache",
                 stats_store: StatisticsStore | None = None, *,
                 drift_threshold: float = 0.5,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.plan_cache = plan_cache
        self.stats_store = stats_store
        self.drift_threshold = drift_threshold
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.queued = 0
        self.runs = 0
        self.swaps = 0
        self.errors = 0
        self._jobs: deque[ReOptimizationJob] = deque()
        self._pending = 0
        self._closed = False
        self._cv = threading.Condition()
        self._thread = threading.Thread(
            target=self._loop, name="reoptimizer", daemon=True
        )
        self._thread.start()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).add(amount)

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Finish queued work and stop the worker thread."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "ReOptimizer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def drain(self, timeout: float = 5.0) -> bool:
        """Block until every queued job has been processed (or the
        timeout passes); returns whether the queue emptied."""
        with self._cv:
            return self._cv.wait_for(
                lambda: self._pending == 0, timeout
            )

    # -- the drift hook --------------------------------------------------------

    def note_drift(self, digest: str, program: TransferProgram,
                   placement: Placement, probe: CostProbe,
                   report: "DriftReport", *,
                   weights: CostWeights | None = None,
                   pair: str | None = None) -> bool:
        """Queue a re-optimization when ``report`` drifted past the
        threshold.  Returns whether a job was queued.  The cached
        entry is *not* invalidated — it keeps serving until the
        background swap lands.
        """
        from repro.services.broker import PlanCache

        if PlanCache.drift_factor(report) <= self.drift_threshold:
            return False
        job = ReOptimizationJob(
            digest=digest, program=program, placement=placement,
            probe=probe, weights=weights, pair=pair,
            ratios=report.kind_ratios(),
        )
        with self._cv:
            if self._closed:
                return False
            self._jobs.append(job)
            self._pending += 1
            self.queued += 1
            self._cv.notify_all()
        self._count("adapt.reopt.queued")
        return True

    # -- the worker ------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._jobs and not self._closed:
                    self._cv.wait()
                if not self._jobs:
                    return  # closed and drained
                job = self._jobs.popleft()
            try:
                self._process(job)
            except Exception:  # pragma: no cover - defensive
                self.errors += 1
                self._count("adapt.reopt.errors")
            finally:
                with self._cv:
                    self._pending -= 1
                    self._cv.notify_all()

    def _corrected_probe(self, job: ReOptimizationJob) -> CostProbe:
        if self.stats_store is not None and job.pair is not None:
            scaled = self.stats_store.scaled_probe(job.pair, job.probe)
            if scaled is not job.probe:
                return scaled
        ratios = dict(job.ratios)
        comm = ratios.pop("comm", None)
        return ScaledProbe(job.probe, ratios, comm)

    def _process(self, job: ReOptimizationJob) -> None:
        from repro.core.optimizer.exhaustive import cost_based_optim

        with self.tracer.span("reoptimize plan", "adapt",
                              digest=job.digest[:12],
                              pair=job.pair) as span:
            probe = self._corrected_probe(job)
            placement, cost = cost_based_optim(
                job.program, probe, job.weights
            )
            self.runs += 1
            self._count("adapt.reopt.runs")
            moved = [
                op_id for op_id, location in placement.items()
                if job.placement.get(op_id) is not location
            ]
            span.annotate(moved=len(moved), cost=cost)
            if not moved:
                return
            swapped = self.plan_cache.replace(
                job.digest, job.program, placement,
                estimated_cost=cost,
            )
            span.annotate(swapped=swapped)
            if swapped:
                self.swaps += 1
                self._count("plan.reoptimized")
