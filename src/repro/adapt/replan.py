"""Suffix re-placement under corrected costs.

Two pieces the re-optimizer and the adaptive executor share:

* :class:`ScaledProbe` corrects any :class:`~repro.core.cost.probe.
  CostProbe` multiplicatively with per-kind measured/predicted ratios
  — the output of :meth:`~repro.obs.drift.DriftReport.kind_ratios` or
  the smoothed ratios of :class:`~repro.adapt.stats.StatisticsStore`.
* :func:`replan_placement` re-runs the formula-1 placement search with
  a *pinned* partial placement: completed and in-flight operations
  keep their locations, only the not-yet-started suffix is re-placed.
  It is the same branch-and-bound enumeration as
  :func:`~repro.core.optimizer.exhaustive.cost_based_optim` (legal =
  source-side set downward closed), restricted to placements that
  extend the pin set.
"""

from __future__ import annotations

import math

from repro.errors import PlacementError
from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.fragment import Fragment
from repro.core.ops.base import Location, Operation
from repro.core.ops.scan import Scan
from repro.core.ops.write import Write
from repro.core.optimizer.placement import resolve_weights
from repro.core.program.dag import Placement, TransferProgram

__all__ = ["ScaledProbe", "replan_placement"]


def _geometric_mean(values: list[float]) -> float:
    finite = [value for value in values
              if value > 0 and math.isfinite(value)]
    if not finite:
        return 1.0
    return math.exp(sum(math.log(value) for value in finite)
                    / len(finite))


class ScaledProbe:
    """A probe whose answers are corrected by observed drift ratios.

    ``kind_scales`` maps :func:`~repro.core.cost.calibrate.
    strategy_key` keys (``"combine"``, ``"combine.hash"``, …) to the
    measured/predicted ratio of that kind; ``comm_scale`` corrects
    ``comm_cost``.  Kinds without evidence — and communication, when
    ``comm_scale`` is ``None`` — are scaled by the geometric mean of
    everything observed, so a uniformly slow substrate does not
    distort the computation/communication balance the optimizer
    trades on.
    """

    def __init__(self, base: CostProbe,
                 kind_scales: dict[str, float],
                 comm_scale: float | None = None) -> None:
        self.base = base
        self.kind_scales = {
            key: value for key, value in kind_scales.items()
            if value > 0 and math.isfinite(value)
        }
        observed = list(self.kind_scales.values())
        if comm_scale is not None and comm_scale > 0:
            observed.append(comm_scale)
        self.neutral = _geometric_mean(observed)
        self.comm_scale = (
            comm_scale if comm_scale is not None and comm_scale > 0
            else self.neutral
        )

    def scale_for(self, op: Operation) -> float:
        """The correction factor for ``op``'s kind (any observed
        strategy variant of the kind matches; unobserved kinds get
        the neutral scale)."""
        prefix = f"{op.kind}."
        best = None
        for key, value in self.kind_scales.items():
            if key == op.kind:
                return value
            if key.startswith(prefix) and best is None:
                best = value
        return best if best is not None else self.neutral

    def comp_cost(self, op: Operation, location: Location,
                  strategy: str | None = None) -> float:
        if strategy is None:
            base = self.base.comp_cost(op, location)
        else:
            try:
                base = self.base.comp_cost(op, location, strategy)
            except TypeError:
                base = self.base.comp_cost(op, location)
        return base * self.scale_for(op)

    def comm_cost(self, fragment: Fragment) -> float:
        return self.base.comm_cost(fragment) * self.comm_scale


def replan_placement(program: TransferProgram, probe: CostProbe,
                     weights: CostWeights | None = None,
                     pinned: Placement | None = None
                     ) -> tuple[Placement, float]:
    """Cheapest legal placement extending ``pinned``.

    Identical search space to :func:`~repro.core.optimizer.exhaustive.
    cost_based_optim` except that operations in ``pinned`` keep their
    assigned location (the executed/in-flight prefix of an adaptive
    run).  Returns the full placement and its formula-1 cost — the
    cost *includes* the pinned prefix, so totals compare across
    replans of the same program.

    Raises:
        PlacementError: if no legal placement extends the pins (e.g. a
            Scan pinned off the source, or a pin forcing a T → S edge).
    """
    program.validate()
    pinned = pinned or {}
    weights = resolve_weights(probe, weights)
    w_comp = weights.computation
    w_com = weights.communication
    order = program.topological_order()
    in_edges = [program.in_edges(node) for node in order]

    comp = [
        {
            Location.SOURCE: w_comp * probe.comp_cost(
                node, Location.SOURCE),
            Location.TARGET: w_comp * probe.comp_cost(
                node, Location.TARGET),
        }
        for node in order
    ]
    comm = [
        [w_com * probe.comm_cost(edge.fragment) for edge in edges]
        for edges in in_edges
    ]

    best_placement: Placement | None = None
    best_cost = 0.0
    placement: Placement = {}

    def options(index: int) -> tuple[Location, ...]:
        node = order[index]
        all_sources = all(
            placement[edge.producer.op_id] is Location.SOURCE
            for edge in in_edges[index]
        )
        fixed = pinned.get(node.op_id)
        if fixed is not None:
            # A pin is only viable where the unpinned search could
            # have gone: SOURCE additionally needs an all-source
            # producer frontier (no T → S edge).
            if fixed is Location.SOURCE and not (
                    all_sources and not isinstance(node, Write)):
                return ()
            if fixed is Location.TARGET and isinstance(node, Scan):
                return ()
            return (fixed,)
        if isinstance(node, Scan):
            return (Location.SOURCE,)
        if isinstance(node, Write):
            return (Location.TARGET,)
        if all_sources:
            return (Location.SOURCE, Location.TARGET)
        return (Location.TARGET,)

    def recurse(index: int, cost: float) -> None:
        nonlocal best_placement, best_cost
        if best_placement is not None and cost >= best_cost:
            return
        if index == len(order):
            best_placement = dict(placement)
            best_cost = cost
            return
        node = order[index]
        for location in options(index):
            extra = comp[index][location]
            for position, edge in enumerate(in_edges[index]):
                if placement[edge.producer.op_id] is not location:
                    extra += comm[index][position]
            placement[node.op_id] = location
            recurse(index + 1, cost + extra)
            del placement[node.op_id]

    recurse(0, 0.0)
    if best_placement is None:
        raise PlacementError(
            "no legal placement extends the pinned prefix"
        )
    return best_placement, best_cost
