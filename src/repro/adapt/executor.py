"""Mid-flight adaptive execution: checkpoint, compare, re-place.

:class:`AdaptiveRun` wraps the ordinary executors.  As operations
complete it compares their observed cost against what the negotiation
probe predicted (per :func:`~repro.core.cost.calibrate.strategy_key`,
with cross-edge shipments tracked as the ``"comm"`` pseudo-kind).
When the per-kind ratios diverge beyond ``replan_threshold`` —
*spread* between kinds, not uniform slowdown, is what re-ranks
placements — it re-places the not-yet-started DAG suffix: completed
and in-flight operations are pinned at their locations and
:func:`~repro.adapt.replan.replan_placement` re-optimizes the rest
under a :class:`~repro.adapt.replan.ScaledProbe` corrected by the
observed ratios.

Re-placement never changes *what* is computed, only *where*: Combine
and Split produce identical values at either endpoint and cross-edge
shipping is decided against the current placement when the value is
actually consumed, so the written target stays byte-identical to the
static run (the differential suite asserts this with replanning forced
at every checkpoint).

Checkpoint granularity follows the dataplane:

* **per operation** — the sequential materialized path hands the run
  a monitor hook; every op boundary is a checkpoint and the very next
  op already sees the re-placed suffix.
* **per expression** — the parallel and streaming dataplanes compile
  or schedule placement ahead of execution, so the run executes the
  program one segment at a time — write-rooted expressions
  (Definition 3.10), merged when they share operations — and
  checkpoints between segments.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import PlacementError
from repro.adapt.replan import ScaledProbe, replan_placement
from repro.adapt.stats import StatisticsStore
from repro.core.cost.calibrate import strategy_key
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostWeights
from repro.core.cost.probe import CostProbe
from repro.core.fragment import Fragment
from repro.core.ops.base import Location, Operation
from repro.core.program.dag import Placement, TransferProgram
from repro.core.program.executor import (
    ExecutionReport,
    ProgramExecutor,
    Shipment,
    critical_path_seconds,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program.dag import Edge

__all__ = ["AdaptiveConfig", "AdaptiveRun", "RatioTracker"]

#: Observed-cost hooks.  ``None`` uses measured wall seconds; tests
#: and benchmarks inject model-derived costs for determinism.
CompFeedback = Callable[[Operation, Location, str, float], float]
CommFeedback = Callable[[Fragment, float], float]


def _predict_comp(probe: CostProbe, node: Operation,
                  location: Location, strategy: str) -> float:
    if strategy in ("", "row"):
        return probe.comp_cost(node, location)
    try:
        return probe.comp_cost(node, location, strategy)
    except TypeError:
        return probe.comp_cost(node, location)


class RatioTracker:
    """Running measured-vs-predicted sums per strategy key."""

    def __init__(self) -> None:
        self._sums: dict[str, tuple[float, float]] = {}
        self.samples = 0

    def observe(self, key: str, measured: float,
                predicted: float) -> None:
        """Fold one observation in (skipped when the prediction is
        degenerate — zero or infinite predictions compare to
        nothing)."""
        if (predicted <= 0 or not math.isfinite(predicted)
                or measured < 0 or not math.isfinite(measured)):
            return
        measured_sum, predicted_sum = self._sums.get(key, (0.0, 0.0))
        self._sums[key] = (
            measured_sum + measured, predicted_sum + predicted
        )
        self.samples += 1

    def ratios(self) -> dict[str, float]:
        """Per-key ``measured / predicted`` over everything observed."""
        return {
            key: measured / predicted
            for key, (measured, predicted) in sorted(self._sums.items())
            if predicted > 0
        }

    def comp_ratios(self) -> dict[str, float]:
        """The computation keys alone (no ``"comm"``)."""
        return {
            key: ratio for key, ratio in self.ratios().items()
            if key != "comm"
        }

    def comm_ratio(self) -> float | None:
        """The communication ratio, when any shipment was observed."""
        return self.ratios().get("comm")

    def divergence(self) -> float:
        """Spread of the per-key ratios: ``max/min - 1`` (0.0 with
        fewer than two comparable keys).  Uniform drift — every kind
        off by the same factor — spreads nothing and changes no
        placement decision, so it never triggers a replan."""
        ratios = [
            ratio for ratio in self.ratios().values() if ratio > 0
        ]
        if len(ratios) < 2:
            return 0.0
        return max(ratios) / min(ratios) - 1.0


@dataclass(slots=True)
class AdaptiveConfig:
    """Knobs of one adaptive run.

    ``probe`` is the cost source the plan was negotiated against —
    the baseline the run measures divergence *from*.  ``comp_feedback``
    / ``comm_feedback`` override what counts as the observed cost of
    an op / a shipment (default: measured wall seconds); the
    differential tests inject the true cost model here so replan
    decisions are deterministic.  With a ``stats_store`` (plus
    ``pair``) the run ingests its observed ratios — and, given
    ``statistics``, a fitted calibration — when it finishes.
    """

    probe: CostProbe
    weights: CostWeights | None = None
    #: Replan when the per-kind ratio spread exceeds this (<= 0 forces
    #: a replan at every checkpoint; ``math.inf`` disables replanning).
    replan_threshold: float = 0.5
    #: Observations required before the first replan may fire.
    min_observations: int = 1
    comp_feedback: CompFeedback | None = None
    comm_feedback: CommFeedback | None = None
    stats_store: StatisticsStore | None = None
    pair: str | None = None
    statistics: StatisticsCatalog | None = None
    #: "op" (sequential materialized only), "expression", or "auto"
    #: (op when the dataplane supports it, expression otherwise).
    granularity: str = "auto"


class AdaptiveRun:
    """Execute a placed program, re-placing its suffix as evidence
    accumulates.  Accepts the same dataplane knobs as
    :func:`~repro.services.exchange.run_optimized_exchange` (journaled
    runs excepted — resume bookkeeping assumes a static plan).

    After :meth:`run`, ``replans`` / ``ops_moved`` / ``checkpoints``
    count what happened and ``placement`` holds the final (possibly
    re-placed) assignment.
    """

    def __init__(self, program: TransferProgram, placement: Placement,
                 source, target, channel=None, *,
                 config: AdaptiveConfig,
                 parallel_workers: int = 1,
                 batch_rows: int | None = None,
                 columnar: bool = False,
                 join_strategy: str | None = None,
                 retry=None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if config.granularity not in ("auto", "op", "expression"):
            raise ValueError(
                f"unknown granularity {config.granularity!r}"
            )
        per_op_capable = parallel_workers == 1 and batch_rows is None
        if config.granularity == "op" and not per_op_capable:
            raise ValueError(
                "per-op granularity needs the sequential materialized "
                "dataplane (parallel_workers=1, batch_rows=None)"
            )
        self.program = program
        self.placement = dict(placement)
        self.source = source
        self.target = target
        self.channel = channel
        self.config = config
        self.parallel_workers = parallel_workers
        self.batch_rows = batch_rows
        self.columnar = columnar
        self.join_strategy = join_strategy
        self.retry = retry
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self.granularity = (
            config.granularity if config.granularity != "auto"
            else ("op" if per_op_capable else "expression")
        )
        self.tracker = RatioTracker()
        self.replans = 0
        self.ops_moved = 0
        self.checkpoints = 0
        self.moved_op_ids: list[int] = []
        self._pinned: Placement = {}

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"adapt.{name}").add(amount)

    # -- driving ---------------------------------------------------------------

    def run(self) -> ExecutionReport:
        """Execute the program adaptively and return the merged
        report (same shape as a static run's).

        Raises:
            ProgramError/PlacementError: as the static executors do.
        """
        self.program.validate()
        self.program.validate_placement(self.placement)
        started = time.perf_counter()
        with self.tracer.span("adaptive run", "adapt",
                              granularity=self.granularity,
                              threshold=self.config.replan_threshold):
            if self.granularity == "op":
                report = self._executor().run(
                    self.program, self.placement, monitor=self
                )
            else:
                report = self._run_expressions()
        report.wall_seconds = time.perf_counter() - started
        report.critical_path_seconds = critical_path_seconds(
            self.program, report
        )
        self._ingest(report)
        return report

    def _executor(self) -> ProgramExecutor:
        return ProgramExecutor(
            self.source, self.target, self.channel,
            batch_rows=self.batch_rows, retry=self.retry,
            tracer=self.tracer, metrics=self.metrics,
            columnar=self.columnar, join_strategy=self.join_strategy,
        )

    def _run_expressions(self) -> ExecutionReport:
        total = ExecutionReport(batch_rows=self.batch_rows)
        segments = _expression_groups(self.program)
        for index, members in enumerate(segments):
            segment = _subprogram(self.program, set(members))
            snapshot = dict(self.placement)
            if self.parallel_workers > 1:
                from repro.core.program.parallel_executor import (
                    ParallelProgramExecutor,
                )

                executor = ParallelProgramExecutor(
                    self.source, self.target, self.channel,
                    workers=self.parallel_workers,
                    batch_rows=self.batch_rows, retry=self.retry,
                    tracer=self.tracer, metrics=self.metrics,
                    columnar=self.columnar,
                    join_strategy=self.join_strategy,
                )
            else:
                executor = self._executor()
            part = executor.run(segment, snapshot)
            _merge_report(total, part)
            self._observe_segment(segment, snapshot, part)
            for op_id in members:
                self._pinned[op_id] = snapshot[op_id]
            self.checkpoints += 1
            self._count("checkpoints")
            if index < len(segments) - 1:
                self._maybe_replan()
        return total

    # -- observation (shared by both granularities) ----------------------------

    def _observe_op(self, node: Operation, location: Location,
                    seconds: float, strategy: str) -> None:
        observed = seconds
        if self.config.comp_feedback is not None:
            observed = self.config.comp_feedback(
                node, location, strategy, seconds
            )
        predicted = _predict_comp(
            self.config.probe, node, location, strategy
        )
        self.tracker.observe(
            strategy_key(node.kind, strategy), observed, predicted
        )
        self._count("observations")

    def _observe_edge(self, fragment: Fragment,
                      seconds: float) -> None:
        observed = seconds
        if self.config.comm_feedback is not None:
            observed = self.config.comm_feedback(fragment, seconds)
        self.tracker.observe(
            "comm", observed, self.config.probe.comm_cost(fragment)
        )
        self._count("observations")

    def _observe_segment(self, segment: TransferProgram,
                         placement: Placement,
                         report: ExecutionReport) -> None:
        nodes = {node.op_id: node for node in segment.nodes}
        for timing in report.op_timings:
            node = nodes.get(timing.op_id)
            if node is None:
                continue
            self._observe_op(
                node, timing.location, timing.seconds,
                getattr(timing, "strategy", "row"),
            )
        for edge in segment.cross_edges(placement):
            key = (edge.producer.op_id, edge.output_index)
            seconds = report.shipment_seconds.get(key)
            if seconds is None:
                continue
            self._observe_edge(edge.fragment, seconds)

    # -- the monitor hooks (per-op granularity) --------------------------------

    def op_started(self, node: Operation) -> Location:
        """Pin ``node`` where the current placement puts it and
        return that location (the executor's read point)."""
        location = self.placement[node.op_id]
        self._pinned[node.op_id] = location
        return location

    def edge_shipped(self, edge: "Edge", shipment: Shipment) -> None:
        self._observe_edge(edge.fragment, shipment.seconds)

    def op_finished(self, node: Operation, location: Location,
                    seconds: float, rows: int,
                    strategy: str = "row") -> None:
        self._observe_op(node, location, seconds, strategy)
        self.checkpoints += 1
        self._count("checkpoints")
        self._maybe_replan()

    # -- replanning ------------------------------------------------------------

    def _maybe_replan(self) -> None:
        remaining = [
            node.op_id for node in self.program.nodes
            if node.op_id not in self._pinned
        ]
        if not remaining:
            return
        if self.tracker.samples < self.config.min_observations:
            return
        divergence = self.tracker.divergence()
        if divergence <= self.config.replan_threshold:
            return
        scaled = ScaledProbe(
            self.config.probe, self.tracker.comp_ratios(),
            self.tracker.comm_ratio(),
        )
        with self.tracer.span("replan suffix", "adapt",
                              divergence=divergence,
                              pinned=len(self._pinned),
                              remaining=len(remaining)) as span:
            try:
                replanned, cost = replan_placement(
                    self.program, scaled, self.config.weights,
                    pinned=dict(self._pinned),
                )
            except PlacementError:
                # The pinned prefix admits no alternative; keep going
                # with the static suffix.
                span.annotate(moved=-1)
                return
            moved = [
                op_id for op_id in remaining
                if replanned[op_id] is not self.placement[op_id]
            ]
            span.annotate(moved=len(moved), cost=cost)
        self.replans += 1
        self._count("replans")
        if moved:
            for op_id in moved:
                self.placement[op_id] = replanned[op_id]
            self.ops_moved += len(moved)
            self.moved_op_ids.extend(moved)
            self._count("ops_moved", len(moved))

    # -- learned-statistics feedback -------------------------------------------

    def _ingest(self, report: ExecutionReport) -> None:
        store = self.config.stats_store
        if store is None or self.config.pair is None:
            return
        ratios = self.tracker.ratios()
        if ratios:
            store.observe_ratios(self.config.pair, ratios)
        if self.config.statistics is not None:
            store.observe_timings(
                self.config.pair, self.program, report.op_timings,
                self.config.statistics,
            )


# -- helpers ---------------------------------------------------------------------


def _expression_groups(program: TransferProgram) -> list[list[int]]:
    """Disjoint executable segments, in topological order.

    Per-Write upstream closures (:meth:`TransferProgram.
    iter_expressions`, Definition 3.10) may *overlap* — a Split whose
    output ports feed two Writes belongs to both expressions.  Running
    an overlapping closure alone would leave the sibling output port
    unconsumed (and re-do shared work), so closures that share any
    operation are merged into one segment.  Within a merged segment
    every consumer of every member is itself a member: any consumer
    leads to some Write, and that Write's closure shares the node.
    """
    expressions = [
        [node.op_id for node in expression]
        for expression in program.iter_expressions()
    ]
    parent = list(range(len(expressions)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    owner: dict[int, int] = {}
    for index, members in enumerate(expressions):
        for op_id in members:
            if op_id in owner:
                root = find(owner[op_id])
                if root != find(index):
                    parent[find(index)] = root
            else:
                owner[op_id] = index
    groups: dict[int, set[int]] = {}
    for index, members in enumerate(expressions):
        groups.setdefault(find(index), set()).update(members)
    position = {
        node.op_id: rank
        for rank, node in enumerate(program.topological_order())
    }
    ordered = sorted(
        groups.values(), key=lambda ops: min(position[op] for op in ops)
    )
    return [sorted(ops, key=position.__getitem__) for ops in ordered]


def _subprogram(program: TransferProgram,
                members: set[int]) -> TransferProgram:
    """The induced sub-DAG over ``members`` (same operation objects,
    so op ids, placements and journal keys stay valid)."""
    sub = TransferProgram()
    for node in program.topological_order():
        if node.op_id in members:
            sub.add(node)
    for edge in program.edges:
        if (edge.producer.op_id in members
                and edge.consumer.op_id in members):
            sub.connect(edge.producer, edge.output_index,
                        edge.consumer, edge.input_index)
    return sub


def _merge_report(total: ExecutionReport,
                  part: ExecutionReport) -> None:
    """Fold one segment's report into the running total (wall clock
    and critical path are recomputed by the caller over the whole
    run)."""
    total.op_timings.extend(part.op_timings)
    for location, seconds in part.comp_seconds.items():
        total.comp_seconds[location] += seconds
    total.comm_bytes += part.comm_bytes
    total.comm_seconds += part.comm_seconds
    total.shipments += part.shipments
    total.rows_written += part.rows_written
    for table in ("shipment_bytes", "shipment_seconds",
                  "shipment_batches", "retries_by_edge",
                  "redelivered_by_edge"):
        merged = getattr(total, table)
        for key, value in getattr(part, table).items():
            merged[key] = merged.get(key, 0) + value
    total.peak_resident_rows = max(
        total.peak_resident_rows, part.peak_resident_rows
    )
    total.peak_resident_bytes = max(
        total.peak_resident_bytes, part.peak_resident_bytes
    )
    total.retries += part.retries
    total.redelivered_batches += part.redelivered_batches
    total.resume_count += part.resume_count
