"""Adaptive execution: learned statistics, background re-optimization,
and mid-flight suffix re-placement.

The paper's negotiation prices plans with probe costs measured once; a
plan negotiated against stale or mis-probed costs stays wrong for its
whole lifetime.  This package closes the loop in three layers:

* :mod:`repro.adapt.stats` — a thread-safe, JSON-persistable
  :class:`~repro.adapt.stats.StatisticsStore` that ingests calibration
  fits and drift reports after every exchange and maintains
  EWMA-smoothed cost scales per (endpoint pair, op kind, strategy).
* :mod:`repro.adapt.reoptimizer` — a background
  :class:`~repro.adapt.reoptimizer.ReOptimizer` that, when drift fires
  past threshold, re-runs placement optimization off the hot path and
  atomically swaps the cached plan instead of invalidating it.
* :mod:`repro.adapt.executor` — an
  :class:`~repro.adapt.executor.AdaptiveRun` wrapper over the
  executors that checkpoints observed-vs-predicted ratios mid-exchange
  and re-places the not-yet-started DAG suffix when they diverge.
"""

from repro.adapt.executor import AdaptiveConfig, AdaptiveRun
from repro.adapt.reoptimizer import ReOptimizer
from repro.adapt.replan import ScaledProbe, replan_placement
from repro.adapt.stats import ScaleEstimate, StatisticsStore, pair_key

__all__ = [
    "AdaptiveConfig",
    "AdaptiveRun",
    "ReOptimizer",
    "ScaledProbe",
    "replan_placement",
    "ScaleEstimate",
    "StatisticsStore",
    "pair_key",
]
