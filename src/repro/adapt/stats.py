"""Learned execution statistics, keyed by endpoint pair and op kind.

The store accumulates two complementary views of every executed
exchange, both keyed by :func:`~repro.core.cost.calibrate.strategy_key`
(bare kinds for the row dataplane, ``combine.hash`` etc. for the
others) under one ``"source->target"`` pair key:

* **seconds-per-work-unit scales** — what
  :func:`~repro.core.cost.calibrate.calibrate_timings` /
  :func:`~repro.obs.drift.calibration_from_trace` fit.  These feed
  :meth:`StatisticsStore.calibration` / :meth:`StatisticsStore.
  cost_model`, so negotiation can price in predicted seconds for this
  substrate.
* **measured/predicted drift ratios** — what
  :meth:`~repro.obs.drift.DriftReport.kind_ratios` reports against the
  probe actually used (including the ``"comm"`` pseudo-kind).  These
  feed :meth:`StatisticsStore.scaled_probe`, which corrects *any*
  probe multiplicatively — the form the background re-optimizer and
  the adaptive executor consume.

Both views are EWMA-smoothed (``alpha``) with per-key observation
counts; :meth:`confidence` rises from 0 toward 1 as observations
accumulate (``n / (n + warmup)``).  The store is thread-safe and
round-trips through JSON (:meth:`save` / :meth:`load`).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.cost.calibrate import Calibration, calibrate_timings
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostWeights, MachineProfile
from repro.core.cost.probe import CostProbe
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cost.calibrate import CalibratedCostModel
    from repro.core.program.dag import TransferProgram
    from repro.core.program.executor import OperationTiming
    from repro.obs.drift import DriftReport
    from repro.adapt.replan import ScaledProbe


def pair_key(source_name: str, target_name: str) -> str:
    """Canonical store key for one exchange direction."""
    return f"{source_name}->{target_name}"


@dataclass(slots=True)
class ScaleEstimate:
    """One EWMA-smoothed per-key estimate with its evidence count."""

    value: float
    observations: int = 1

    def update(self, observed: float, alpha: float,
               weight: int = 1) -> None:
        """Fold one observation in (EWMA with smoothing ``alpha``)."""
        self.value = (1.0 - alpha) * self.value + alpha * observed
        self.observations += max(1, weight)


class StatisticsStore:
    """Thread-safe learned-statistics store for adaptive negotiation.

    ``alpha`` is the EWMA smoothing factor (1.0 = keep only the latest
    observation); ``warmup`` sets how many observations it takes for
    :meth:`confidence` to reach 0.5.  Mutations mirror into
    ``metrics`` as ``adapt.stats.*`` counters when a registry is
    supplied.
    """

    def __init__(self, *, alpha: float = 0.3, warmup: int = 3,
                 metrics: MetricsRegistry | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.alpha = alpha
        self.warmup = warmup
        self.metrics = metrics
        self.ingests = 0
        self._scales: dict[str, dict[str, ScaleEstimate]] = {}
        self._ratios: dict[str, dict[str, ScaleEstimate]] = {}
        self._lock = threading.RLock()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"adapt.stats.{name}").add(amount)

    def __len__(self) -> int:
        with self._lock:
            return len(self._scales.keys() | self._ratios.keys())

    def pairs(self) -> list[str]:
        """Pair keys with any learned state, sorted."""
        with self._lock:
            return sorted(self._scales.keys() | self._ratios.keys())

    # -- ingestion -------------------------------------------------------------

    @staticmethod
    def _merge(table: dict[str, ScaleEstimate],
               updates: dict[str, float], alpha: float,
               samples: dict[str, int] | None = None) -> int:
        merged = 0
        for key, value in updates.items():
            if value <= 0:
                continue
            weight = (samples or {}).get(key, 1)
            entry = table.get(key)
            if entry is None:
                table[key] = ScaleEstimate(value, max(1, weight))
            else:
                entry.update(value, alpha, weight)
            merged += 1
        return merged

    def observe_calibration(self, pair: str,
                            calibration: Calibration) -> None:
        """Ingest one fitted calibration (seconds-per-unit scales)."""
        with self._lock:
            table = self._scales.setdefault(pair, {})
            merged = self._merge(
                table, calibration.seconds_per_unit, self.alpha,
                calibration.samples,
            )
            self.ingests += 1
        self._count("calibrations")
        self._count("scale_updates", merged)

    def observe_ratios(self, pair: str,
                       ratios: dict[str, float]) -> None:
        """Ingest per-kind measured/predicted ratios directly (what
        an adaptive run accumulates in flight)."""
        with self._lock:
            table = self._ratios.setdefault(pair, {})
            merged = self._merge(table, ratios, self.alpha)
            self.ingests += 1
        self._count("drifts")
        self._count("ratio_updates", merged)

    def observe_drift(self, pair: str, report: "DriftReport") -> None:
        """Ingest one drift report's per-kind measured/predicted
        ratios (including the ``"comm"`` pseudo-kind)."""
        self.observe_ratios(pair, report.kind_ratios())

    def observe_timings(self, pair: str, program: "TransferProgram",
                        timings: "Iterable[OperationTiming]",
                        statistics: StatisticsCatalog) -> Calibration:
        """Fit a calibration from raw per-op timings and ingest it."""
        calibration = calibrate_timings(program, timings, statistics)
        self.observe_calibration(pair, calibration)
        return calibration

    def observe_exchange(self, pair: str, program: "TransferProgram",
                         placement, report, probe: CostProbe,
                         statistics: StatisticsCatalog | None = None
                         ) -> "DriftReport":
        """The one-call post-exchange hook: joins ``report`` against
        ``probe`` (see :func:`~repro.obs.drift.cost_drift_report`),
        ingests the drift ratios, and — when ``statistics`` are
        supplied — the fitted seconds-per-unit scales too.  Returns
        the drift report so callers can act on it."""
        from repro.obs.drift import cost_drift_report

        drift = cost_drift_report(program, placement, report, probe)
        self.observe_drift(pair, drift)
        if statistics is not None:
            self.observe_timings(
                pair, program, report.op_timings, statistics
            )
        return drift

    # -- learned views ---------------------------------------------------------

    def seconds_per_unit(self, pair: str) -> dict[str, float]:
        """Smoothed per-key seconds-per-work-unit scales (empty when
        the pair has no calibration evidence)."""
        with self._lock:
            return {
                key: entry.value
                for key, entry in self._scales.get(pair, {}).items()
            }

    def ratios(self, pair: str) -> dict[str, float]:
        """Smoothed per-key measured/predicted drift ratios."""
        with self._lock:
            return {
                key: entry.value
                for key, entry in self._ratios.get(pair, {}).items()
            }

    def observations(self, pair: str, key: str) -> int:
        """Evidence count behind one key (scales and ratios summed)."""
        with self._lock:
            scale = self._scales.get(pair, {}).get(key)
            ratio = self._ratios.get(pair, {}).get(key)
        return ((scale.observations if scale else 0)
                + (ratio.observations if ratio else 0))

    def confidence(self, pair: str, key: str) -> float:
        """How much to trust the learned value for ``key``:
        ``n / (n + warmup)`` over the evidence count — 0.0 with no
        observations, 0.5 at ``warmup``, asymptotically 1.0."""
        count = self.observations(pair, key)
        return count / (count + self.warmup)

    def calibration(self, pair: str,
                    statistics: StatisticsCatalog
                    ) -> Calibration | None:
        """The learned scales as a :class:`~repro.core.cost.calibrate.
        Calibration` (``None`` when the pair has no evidence)."""
        with self._lock:
            table = self._scales.get(pair)
            if not table:
                return None
            return Calibration(
                statistics,
                {key: entry.value for key, entry in table.items()},
                {key: entry.observations
                 for key, entry in table.items()},
            )

    def cost_model(self, pair: str, statistics: StatisticsCatalog,
                   source: MachineProfile | None = None,
                   target: MachineProfile | None = None,
                   weights: CostWeights | None = None,
                   bandwidth: float = 1.0
                   ) -> "CalibratedCostModel | None":
        """A :class:`~repro.core.cost.calibrate.CalibratedCostModel`
        pricing computation in learned seconds — what negotiation
        uses when it holds machine profiles; ``None`` when the pair
        has no calibration evidence yet."""
        calibration = self.calibration(pair, statistics)
        if calibration is None:
            return None
        return calibration.scaled_model(
            source, target, weights, bandwidth
        )

    def scaled_probe(self, pair: str,
                     probe: CostProbe) -> CostProbe:
        """Correct ``probe`` by the learned drift ratios.

        Works for *any* probe (live endpoint probes included): each
        kind's comp cost is multiplied by its smoothed
        measured/predicted ratio, communication by the ``"comm"``
        ratio, unobserved kinds by the geometric mean of the rest.
        Returns ``probe`` unchanged when the pair has no ratio
        evidence — callers can pass the result straight to the
        optimizers either way.
        """
        from repro.adapt.replan import ScaledProbe

        ratios = self.ratios(pair)
        if not ratios:
            return probe
        comm_scale = ratios.pop("comm", None)
        return ScaledProbe(probe, ratios, comm_scale)

    # -- introspection and persistence ----------------------------------------

    def summary(self) -> dict[str, object]:
        """JSON-able snapshot (the control-plane stats endpoint)."""
        with self._lock:
            pairs = sorted(self._scales.keys() | self._ratios.keys())
            return {
                "alpha": self.alpha,
                "warmup": self.warmup,
                "ingests": self.ingests,
                "pairs": {
                    pair: {
                        "seconds_per_unit": {
                            key: {
                                "value": entry.value,
                                "observations": entry.observations,
                                "confidence": entry.observations / (
                                    entry.observations + self.warmup
                                ),
                            }
                            for key, entry in sorted(
                                self._scales.get(pair, {}).items()
                            )
                        },
                        "ratios": {
                            key: {
                                "value": entry.value,
                                "observations": entry.observations,
                                "confidence": entry.observations / (
                                    entry.observations + self.warmup
                                ),
                            }
                            for key, entry in sorted(
                                self._ratios.get(pair, {}).items()
                            )
                        },
                    }
                    for pair in pairs
                },
            }

    def to_dict(self) -> dict[str, object]:
        """Full JSON-able state (see :meth:`from_dict`)."""
        with self._lock:
            return {
                "alpha": self.alpha,
                "warmup": self.warmup,
                "ingests": self.ingests,
                "scales": {
                    pair: {
                        key: [entry.value, entry.observations]
                        for key, entry in table.items()
                    }
                    for pair, table in self._scales.items()
                },
                "ratios": {
                    pair: {
                        key: [entry.value, entry.observations]
                        for key, entry in table.items()
                    }
                    for pair, table in self._ratios.items()
                },
            }

    @classmethod
    def from_dict(cls, data: dict[str, object], *,
                  metrics: MetricsRegistry | None = None
                  ) -> "StatisticsStore":
        """Rebuild a store serialized by :meth:`to_dict`."""
        store = cls(
            alpha=float(data.get("alpha", 0.3)),  # type: ignore[arg-type]
            warmup=int(data.get("warmup", 3)),  # type: ignore[arg-type]
            metrics=metrics,
        )
        store.ingests = int(data.get("ingests", 0))  # type: ignore[arg-type]
        for attr, table in (("_scales", data.get("scales") or {}),
                            ("_ratios", data.get("ratios") or {})):
            target = getattr(store, attr)
            for pair, entries in table.items():  # type: ignore[union-attr]
                target[pair] = {
                    key: ScaleEstimate(float(value), int(count))
                    for key, (value, count) in entries.items()
                }
        return store

    def save(self, path: str | os.PathLike) -> None:
        """Persist the store as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str | os.PathLike, *,
             metrics: MetricsRegistry | None = None
             ) -> "StatisticsStore":
        """Load a store persisted by :meth:`save`.

        Raises:
            OSError: if the file cannot be read.
            ValueError: if it is not valid JSON.
        """
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"stats store file {path} is not valid JSON: {exc}"
                ) from exc
        return cls.from_dict(data, metrics=metrics)
