r"""ASCII feed files: the paper's shred-to-files / SQL LOAD path.

Section 5.1: the shredder "discarded the content of the stack as soon
as tuples were flushed to files", and loading is "SQL LOAD statements".
This module provides that interchange format — a MySQL-LOAD-style
tab-separated file per table, with a header line, ``\N`` for NULL and
backslash escaping — plus whole-database dump/restore helpers.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.errors import RelationalError
from repro.relational.engine import Database
from repro.relational.table import Table

NULL_MARKER = r"\N"


def _escape(value: object) -> str:
    if value is None:
        return NULL_MARKER
    text = str(value)
    return (
        text.replace("\\", "\\\\")
        .replace("\t", "\\t")
        .replace("\n", "\\n")
    )


def _unescape(field: str) -> str | None:
    if field == NULL_MARKER:
        return None
    out: list[str] = []
    index = 0
    while index < len(field):
        ch = field[index]
        if ch == "\\" and index + 1 < len(field):
            nxt = field[index + 1]
            out.append({"t": "\t", "n": "\n", "\\": "\\"}.get(nxt, nxt))
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)


def dump_table(table: Table, path: str) -> int:
    """Write one table as a feed file; returns rows written."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "\t".join(table.schema.column_names()) + "\n"
        )
        for row in table.scan():
            handle.write(
                "\t".join(_escape(value) for value in row) + "\n"
            )
    return len(table)


def load_table(db: Database, table_name: str, path: str) -> int:
    """Bulk-LOAD a feed file into an existing table.

    The header must match the table's columns (order included).

    Raises:
        RelationalError: on a header mismatch or ragged rows.
    """
    table = db.table(table_name)
    expected = [name.lower() for name in table.schema.column_names()]
    rows: list[list[object]] = []
    with open(path, encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n").split("\t")
        if [name.lower() for name in header] != expected:
            raise RelationalError(
                f"feed file {path!r} header {header} does not match "
                f"table {table_name!r} columns {expected}"
            )
        for line_number, line in enumerate(handle, start=2):
            fields = line.rstrip("\n").split("\t")
            if len(fields) != len(expected):
                raise RelationalError(
                    f"{path!r} line {line_number}: expected "
                    f"{len(expected)} fields, got {len(fields)}"
                )
            rows.append([_unescape(field) for field in fields])
    return db.load(table_name, rows)


def dump_database(db: Database, directory: str) -> dict[str, int]:
    """Dump every table to ``directory/<table>.feed``; returns the
    per-table row counts."""
    os.makedirs(directory, exist_ok=True)
    counts = {}
    for name in db.table_names():
        counts[name] = dump_table(
            db.table(name), os.path.join(directory, f"{name}.feed")
        )
    return counts


def load_database(db: Database, directory: str,
                  tables: Iterable[str] | None = None) -> int:
    """Load feed files back into existing tables; returns total rows.

    Raises:
        RelationalError: if a requested feed file is missing.
    """
    names = list(tables) if tables is not None else db.table_names()
    total = 0
    for name in names:
        path = os.path.join(directory, f"{name}.feed")
        if not os.path.exists(path):
            raise RelationalError(f"no feed file for table {name!r}")
        total += load_table(db, name, path)
    return total
