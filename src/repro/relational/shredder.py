"""Stack-based XML shredding into per-fragment tuple feeds.

This mirrors the paper's Section 5.1 implementation: a SAX handler (the
paper used Expat; we use :mod:`repro.xmlkit.parser`) maintains a stack
of open elements and a stack of open fragment rows; tuples are flushed
as soon as their fragment root closes, so memory stays bounded by
document depth.  Fresh element ids are assigned during the parse — the
published document carries no keys, exactly like the paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.columnar import ColumnBatch
from repro.core.stream import DEFAULT_BATCH_ROWS
from repro.errors import RelationalError, SchemaError
from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper
from repro.xmlkit.parser import ContentHandler, push_parse


@dataclass(slots=True)
class ShredResult:
    """Tuples produced by one shred run, per fragment table."""

    rows: dict[str, list[tuple]] = field(default_factory=dict)
    elements_parsed: int = 0

    @property
    def tuple_count(self) -> int:
        """Total tuples across all tables."""
        return sum(len(rows) for rows in self.rows.values())

    def load_into(self, db: Database) -> int:
        """Bulk-load every table's tuples (publish&map step 5)."""
        loaded = 0
        for table_name, rows in self.rows.items():
            loaded += db.load(table_name, rows)
        return loaded

    def column_batches(self, mapper: FragmentRelationMapper,
                       batch_rows: int = DEFAULT_BATCH_ROWS
                       ) -> Iterator[ColumnBatch]:
        """The shredded tuples as columnar batches (columnar emit).

        The shredder's per-table tuple layout *is* each fragment's
        :class:`~repro.core.columnar.ColumnLayout` (same specs, same
        order), so this is a straight transpose with no tree building
        — the publish&map load can then go through the same columnar
        bulk-load as a columnar Write (:meth:`load_into_columnar`).
        """
        if batch_rows < 1:
            raise ValueError(
                f"batch_rows must be >= 1, got {batch_rows}"
            )
        for layout in mapper.layouts.values():
            rows = self.rows.get(layout.table_name, [])
            seq = 0
            for start in range(0, len(rows), batch_rows):
                chunk = rows[start:start + batch_rows]
                columns = [list(cells) for cells in zip(*chunk)]
                yield ColumnBatch(
                    layout.fragment, columns, seq, layout
                )
                seq += 1

    def load_into_columnar(self, db: Database,
                           mapper: FragmentRelationMapper,
                           batch_rows: int = DEFAULT_BATCH_ROWS) -> int:
        """Bulk-load through the columnar dataplane — row-identical
        to :meth:`load_into`, batched at ``batch_rows``."""
        loaded = 0
        for batch in self.column_batches(mapper, batch_rows):
            loaded += mapper.load_columns(db, batch.fragment, batch)
        return loaded


class _ShredHandler(ContentHandler):
    """The SAX callbacks that do the shredding."""

    def __init__(self, mapper: FragmentRelationMapper,
                 start_eid: int = 1) -> None:
        self.mapper = mapper
        self.fragmentation = mapper.fragmentation
        self.schema = mapper.fragmentation.schema
        self.result = ShredResult(
            rows={
                layout.table_name: []
                for layout in mapper.layouts.values()
            }
        )
        self._next_eid = start_eid
        #: Stack of (element name, eid).
        self._elements: list[tuple[str, int]] = []
        #: Per-element text accumulation, parallel to ``_elements``.
        self._texts: list[list[str]] = []
        #: Open row stacks, keyed by fragment name.
        self._open_rows: dict[str, list[dict[str, object]]] = {}

    # -- SAX callbacks ------------------------------------------------------------

    def start_element(self, name: str, attrs: dict[str, str]) -> None:
        if name not in self.schema:
            raise SchemaError(
                f"document element {name!r} is not in the schema"
            )
        eid = self._next_eid
        self._next_eid += 1
        fragment = self.fragmentation.fragment_of(name)
        if fragment.root_name == name:
            parent_eid = self._elements[-1][1] if self._elements else None
            row: dict[str, object] = {"id": eid, "parent": parent_eid}
            self._open_rows.setdefault(fragment.name, []).append(row)
        else:
            row = self._current_row(fragment.name, name)
            row[f"{name.lower()}_eid"] = eid
        for attribute, value in attrs.items():
            row[f"{name.lower()}_{attribute.lower()}"] = value
        self._elements.append((name, eid))
        self._texts.append([])
        self.result.elements_parsed += 1

    def characters(self, text: str) -> None:
        if self._texts:
            self._texts[-1].append(text)

    def end_element(self, name: str) -> None:
        self._elements.pop()
        text = "".join(self._texts.pop()).strip()
        fragment = self.fragmentation.fragment_of(name)
        row = self._current_row(fragment.name, name)
        if self.schema.node(name).is_leaf and text:
            row[name.lower()] = text
        if fragment.root_name == name:
            self._flush(fragment.name)

    # -- internals -------------------------------------------------------------------

    def _current_row(self, fragment_name: str,
                     element: str) -> dict[str, object]:
        stack = self._open_rows.get(fragment_name)
        if not stack:
            raise RelationalError(
                f"element {element!r} appeared outside its fragment "
                f"root ({fragment_name!r})"
            )
        return stack[-1]

    def _flush(self, fragment_name: str) -> None:
        row = self._open_rows[fragment_name].pop()
        layout = self.mapper.layouts[fragment_name]
        self.result.rows[layout.table_name].append(
            tuple(row.get(spec.name) for spec in layout.specs)
        )


def shred_document(text: str, mapper: FragmentRelationMapper,
                   start_eid: int = 1) -> ShredResult:
    """Parse ``text`` and shred it into ``mapper``'s fragment tables'
    tuple format (publish&map step 4).

    ``start_eid`` is the first element id assigned; shredding several
    documents into one store must use disjoint id ranges (see
    :func:`shred_documents`).

    Raises:
        XmlSyntaxError: on malformed XML.
        SchemaError: if the document uses undeclared elements.
    """
    handler = _ShredHandler(mapper, start_eid)
    push_parse(text, handler)
    return handler.result


def shred_documents(texts: "list[str] | tuple[str, ...]",
                    mapper: FragmentRelationMapper) -> ShredResult:
    """Shred a document *set* (one per service result, Section 1.1)
    into one combined result, assigning globally unique element ids."""
    combined = ShredResult(
        rows={
            layout.table_name: []
            for layout in mapper.layouts.values()
        }
    )
    next_eid = 1
    for text in texts:
        result = shred_document(text, mapper, start_eid=next_eid)
        next_eid += result.elements_parsed
        combined.elements_parsed += result.elements_parsed
        for table_name, rows in result.rows.items():
            combined.rows[table_name].extend(rows)
    return combined
