"""Secondary indexes: hash (equality) and sorted (range/order).

Index maintenance is what Table 4 of the paper times separately from
loading; :class:`Table` therefore does *not* maintain indexes during
bulk loads — they are built explicitly afterwards, and
:meth:`HashIndex.build` / :meth:`SortedIndex.build` do the measurable
work.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence


class HashIndex:
    """Equality index: value → row ids."""

    kind = "hash"

    def __init__(self, table_name: str, column: str, position: int) -> None:
        self.table_name = table_name
        self.column = column
        self.position = position
        self._buckets: dict[object, list[int]] = {}
        self.built = False

    def build(self, rows: Sequence[tuple]) -> None:
        """(Re)build the index over all rows."""
        self._buckets.clear()
        position = self.position
        for row_id, row in enumerate(rows):
            self._buckets.setdefault(row[position], []).append(row_id)
        self.built = True

    def add(self, row_id: int, row: tuple) -> None:
        """Index one appended row (incremental maintenance)."""
        self._buckets.setdefault(row[self.position], []).append(row_id)

    def lookup(self, value: object) -> list[int]:
        """Row ids whose column equals ``value``."""
        return self._buckets.get(value, [])

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Order index: sorted (value, row id) pairs; supports ranges."""

    kind = "sorted"

    def __init__(self, table_name: str, column: str, position: int) -> None:
        self.table_name = table_name
        self.column = column
        self.position = position
        self._entries: list[tuple[object, int]] = []
        self.built = False

    def build(self, rows: Sequence[tuple]) -> None:
        """(Re)build the index over all rows (None sorts first)."""
        position = self.position
        self._entries = sorted(
            ((row[position], row_id) for row_id, row in enumerate(rows)
             if row[position] is not None),
            key=lambda entry: entry[0],
        )
        self.built = True

    def add(self, row_id: int, row: tuple) -> None:
        """Insert one appended row in order."""
        value = row[self.position]
        if value is None:
            return
        bisect.insort(self._entries, (value, row_id),
                      key=lambda entry: entry[0])

    def row_ids_in_order(self) -> Iterable[int]:
        """All indexed row ids in ascending column order."""
        return (row_id for _, row_id in self._entries)

    def range(self, low: object | None, high: object | None) -> list[int]:
        """Row ids with ``low <= value <= high`` (None = unbounded)."""
        keys = [entry[0] for entry in self._entries]
        start = 0 if low is None else bisect.bisect_left(keys, low)
        stop = (
            len(keys) if high is None else bisect.bisect_right(keys, high)
        )
        return [row_id for _, row_id in self._entries[start:stop]]

    def __len__(self) -> int:
        return len(self._entries)
