"""Column types and value coercion for the relational engine."""

from __future__ import annotations

import enum

from repro.errors import TableError


class ColumnType(enum.Enum):
    """The three storage types the workloads need."""

    INTEGER = "INTEGER"
    TEXT = "TEXT"
    REAL = "REAL"

    @classmethod
    def from_sql(cls, token: str) -> "ColumnType":
        """Map a SQL type name (with common aliases) to a ColumnType."""
        normalized = token.upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
        }
        try:
            return aliases[normalized]
        except KeyError as exc:
            raise TableError(f"unknown column type {token!r}") from exc

    def coerce(self, value: object) -> object:
        """Coerce ``value`` to this type (``None`` passes through).

        Raises:
            TableError: if the value cannot represent this type.
        """
        if value is None:
            return None
        try:
            if self is ColumnType.INTEGER:
                if isinstance(value, bool):
                    raise ValueError("booleans are not integers")
                return int(value)
            if self is ColumnType.REAL:
                return float(value)
            return str(value)
        except (TypeError, ValueError) as exc:
            raise TableError(
                f"cannot store {value!r} in a {self.value} column"
            ) from exc
