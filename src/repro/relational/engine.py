"""The database façade: named tables + SQL execution + statistics."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import TableError
from repro.relational.schema import TableSchema
from repro.relational.sql.executor import Result, execute_statement
from repro.relational.sql.parser import parse_sql
from repro.relational.table import Table


class Database:
    """A named collection of tables (one per system in the exchange)."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- DDL -----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from a schema object.

        Raises:
            TableError: if the name is taken.
        """
        key = schema.name.lower()
        if key in self._tables:
            raise TableError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table.

        Raises:
            TableError: if it does not exist.
        """
        try:
            del self._tables[name.lower()]
        except KeyError as exc:
            raise TableError(f"no table {name!r}") from exc

    # -- access ---------------------------------------------------------------

    def table(self, name: str) -> Table:
        """Return table ``name``.

        Raises:
            TableError: if it does not exist.
        """
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise TableError(
                f"database {self.name!r} has no table {name!r}"
            ) from exc

    def has_table(self, name: str) -> bool:
        """True if the table exists."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """Declared table names (original case), sorted."""
        return sorted(
            table.schema.name for table in self._tables.values()
        )

    # -- SQL -------------------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Parse and execute one SQL statement."""
        return execute_statement(self, parse_sql(sql))

    def query(self, sql: str) -> list[tuple]:
        """Execute a SELECT and return its rows."""
        return self.execute(sql).rows

    def explain(self, sql: str) -> str:
        """Describe how a SELECT will be evaluated (see
        :mod:`repro.relational.sql.explain`)."""
        from repro.relational.sql.explain import explain

        return explain(self, sql)

    # -- bulk operations --------------------------------------------------------

    def load(self, table_name: str,
             rows: Iterable[Sequence[object]]) -> int:
        """Bulk-load rows (LOAD semantics: indexes left stale)."""
        return self.table(table_name).bulk_load(rows)

    def build_all_indexes(self) -> int:
        """Rebuild every stale index in the database; returns count."""
        return sum(
            table.build_indexes() for table in self._tables.values()
        )

    # -- statistics ----------------------------------------------------------------

    def row_count(self, table_name: str) -> int:
        """Rows currently stored in ``table_name``."""
        return len(self.table(table_name))

    def total_rows(self) -> int:
        """Rows across all tables."""
        return sum(len(table) for table in self._tables.values())

    def estimated_bytes(self) -> int:
        """Approximate storage footprint of all tables."""
        return sum(
            table.estimated_bytes() for table in self._tables.values()
        )
