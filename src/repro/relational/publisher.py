"""Optimized XML publishing from relational fragments (after [6]).

Publishing a full document from a fragmentation runs one sorted-feed
query per fragment table (``SELECT * ... ORDER BY parent, id``), groups
each feed by PARENT, and *merges & tags* the feeds into a single XML
document by walking the schema tree — the strategy of Fernández,
Morishima & Suciu that the paper uses as its optimized publish&map
baseline (Section 5.1).  The tagger streams through
:class:`~repro.xmlkit.writer.XmlStreamWriter`, so no element tree is
materialized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RelationalError
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData
from repro.core.stream import DEFAULT_BATCH_ROWS
from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper
from repro.xmlkit.writer import XmlStreamWriter

#: Feed of one fragment grouped by PARENT: parent eid -> occurrences.
GroupedFeed = dict[int | None, list[ElementData]]


@dataclass(slots=True)
class PublishReport:
    """What a publish run produced."""

    document: str
    fragments_queried: int
    rows_merged: int

    @property
    def bytes(self) -> int:
        """Size of the published document."""
        return len(self.document)


def fetch_feeds(db: Database, mapper: FragmentRelationMapper,
                columnar: bool = False,
                batch_rows: int = DEFAULT_BATCH_ROWS
                ) -> dict[str, GroupedFeed]:
    """Run the per-fragment sorted-feed queries and group by PARENT.

    ``columnar=True`` consumes each feed through the columnar scan
    (:meth:`~repro.relational.frag_store.FragmentRelationMapper.
    scan_fragment_columns`): column batches flow out of the store and
    rows are only built here, batch by batch, at the tagging boundary
    — the publisher-side mirror of the dataplane rule that columns
    convert to rows only where serialization demands trees.
    """
    feeds: dict[str, GroupedFeed] = {}
    for fragment in mapper.fragmentation:
        grouped: GroupedFeed = {}
        if columnar:
            for batch in mapper.scan_fragment_columns(
                    db, fragment, batch_rows):
                for row in batch.rows:
                    grouped.setdefault(row.parent, []).append(row.data)
        else:
            instance = mapper.scan_fragment(db, fragment)
            for row in instance.rows:
                grouped.setdefault(row.parent, []).append(row.data)
        feeds[fragment.name] = grouped
    return feeds


def publish_document(db: Database, mapper: FragmentRelationMapper,
                     columnar: bool = False,
                     batch_rows: int = DEFAULT_BATCH_ROWS
                     ) -> PublishReport:
    """Publish the full XML document stored under ``mapper``'s
    fragmentation (publish&map steps 1–2: execute queries, tag).

    ``columnar=True`` fetches the feeds through the columnar scan (see
    :func:`fetch_feeds`); the published document is identical.

    Raises:
        RelationalError: if the stored data does not contain exactly one
            document root.
    """
    fragmentation = mapper.fragmentation
    schema = fragmentation.schema
    feeds = fetch_feeds(db, mapper, columnar, batch_rows)
    rows_merged = sum(
        len(group) for feed in feeds.values() for group in feed.values()
    )

    writer = XmlStreamWriter()

    def emit(fragment: Fragment, occurrence: ElementData) -> None:
        _emit_element(fragment, occurrence)

    def _emit_element(fragment: Fragment,
                      occurrence: ElementData) -> None:
        writer.start(occurrence.name, occurrence.attrs)
        if occurrence.text:
            writer.characters(occurrence.text)
        for child_node in schema.node(occurrence.name).children:
            if child_node.name in fragment.elements:
                for child in occurrence.child_list(child_node.name):
                    _emit_element(fragment, child)
            else:
                child_fragment = fragmentation.fragment_of(
                    child_node.name
                )
                grouped = feeds[child_fragment.name]
                for child in grouped.get(occurrence.eid, []):
                    emit(child_fragment, child)
        writer.end(occurrence.name)

    root_fragment = fragmentation.root_fragment()
    roots = feeds[root_fragment.name].get(None, [])
    if len(roots) != 1:
        raise RelationalError(
            f"expected exactly one document root, found {len(roots)} "
            "(use publish_document_set for multi-document services)"
        )
    emit(root_fragment, roots[0])
    return PublishReport(
        writer.getvalue(), len(fragmentation.fragments), rows_merged
    )


def publish_document_set(db: Database,
                         mapper: FragmentRelationMapper
                         ) -> list[PublishReport]:
    """Publish one document per stored root occurrence.

    Services like CustomerInfoService return *a set of XML documents*,
    one per customer (Section 1.1); a store whose root-fragment table
    holds several parentless rows publishes that set.  Feeds are
    fetched once and shared across the documents.
    """
    fragmentation = mapper.fragmentation
    schema = fragmentation.schema
    feeds = fetch_feeds(db, mapper)
    root_fragment = fragmentation.root_fragment()
    reports: list[PublishReport] = []
    for root in feeds[root_fragment.name].get(None, []):
        writer = XmlStreamWriter()

        def emit(fragment: Fragment, occurrence: ElementData) -> None:
            writer.start(occurrence.name, occurrence.attrs)
            if occurrence.text:
                writer.characters(occurrence.text)
            for child_node in schema.node(occurrence.name).children:
                if child_node.name in fragment.elements:
                    for child in occurrence.child_list(
                            child_node.name):
                        emit(fragment, child)
                else:
                    child_fragment = fragmentation.fragment_of(
                        child_node.name
                    )
                    for child in feeds[child_fragment.name].get(
                            occurrence.eid, []):
                        emit(child_fragment, child)
            writer.end(occurrence.name)

        emit(root_fragment, root)
        document = writer.getvalue()
        reports.append(
            PublishReport(
                document, len(fragmentation.fragments),
                _count_elements(document),
            )
        )
    return reports


def _count_elements(document: str) -> int:
    """Rows merged into one published document (its element count)."""
    from repro.xmlkit.parser import iterparse
    from repro.xmlkit.events import StartElement

    return sum(
        1 for event in iterparse(document)
        if isinstance(event, StartElement)
    )
