"""Relational storage of fragmentations.

A registered (flat-storable) fragmentation maps to one table per
fragment: ``id`` (the fragment root's element id), ``parent`` (the
paper's PARENT attribute), an ``<element>_eid`` key column for every
internal element (document structure is captured through foreign keys,
Section 5), a text column per leaf, and a column per declared XML
attribute.  The mapper moves whole documents and fragment instances in
and out of that schema; ``Scan`` is a ``SELECT * ... ORDER BY parent,
id`` (a sorted feed, as in [5, 6]).
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

from repro.errors import RelationalError, TableError
from repro.core.columnar import ColumnBatch, ColumnLayout, ColumnSpec
from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.core.stream import RowBatch
from repro.relational.engine import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType

#: The table layout and the columnar dataplane share one spec type —
#: a fragment's table columns ARE its :class:`~repro.core.columnar.
#: ColumnBatch` columns, in the same order.
_ColumnSpec = ColumnSpec


class _FragmentLayout(ColumnLayout):
    """Column layout of one fragment's table.

    Extends the dataplane's :class:`~repro.core.columnar.ColumnLayout`
    (same specs, same order — that identity is what makes a columnar
    scan a straight slice of the sorted feed and a columnar write a
    straight bulk load) with the table name, DDL generation and the
    row<->occurrence converters of the materialized paths.
    """

    def __init__(self, fragment: Fragment) -> None:
        if not fragment.is_flat_storable():
            raise RelationalError(
                f"fragment {fragment.name!r} has repeated inner elements "
                "and cannot be stored as a flat relation (see DESIGN.md)"
            )
        super().__init__(fragment)
        self.table_name = fragment.name
        names = [spec.name for spec in self.specs]
        if len(names) != len(set(names)):
            raise TableError(
                f"column name collision in fragment {fragment.name!r}: "
                f"{sorted(names)}"
            )

    def table_schema(self) -> TableSchema:
        columns = []
        for spec in self.specs:
            if spec.role in ("id", "parent", "eid"):
                column_type = ColumnType.INTEGER
            else:
                column_type = ColumnType.TEXT
            nullable = spec.role != "id"
            columns.append(Column(spec.name, column_type, nullable))
        return TableSchema(self.table_name, columns, primary_key="id")

    # -- ElementData -> row -------------------------------------------------------

    def row_from_occurrence(self, occurrence: ElementData,
                            parent_eid: int | None) -> tuple:
        """Flatten one fragment-root occurrence into a table row."""
        found: dict[str, ElementData] = {}

        def collect(node: ElementData) -> None:
            found[node.name] = node
            for child_name, group in node.children.items():
                if child_name in self.fragment.elements:
                    for child in group:
                        collect(child)

        collect(occurrence)
        values: list[object] = []
        for spec in self.specs:
            if spec.role == "id":
                values.append(occurrence.eid)
            elif spec.role == "parent":
                values.append(parent_eid)
            else:
                node = found.get(spec.element or "")
                if node is None:
                    values.append(None)
                elif spec.role == "eid":
                    values.append(node.eid)
                elif spec.role == "text":
                    values.append(node.text)
                else:
                    values.append(node.attrs.get(spec.attribute or ""))
        return tuple(values)

    # -- row -> ElementData ---------------------------------------------------------

    def occurrence_from_row(self, row: tuple,
                            positions: dict[str, int]
                            ) -> tuple[ElementData, int | None]:
        """Rebuild the nested occurrence (and its PARENT) from a row."""
        by_element_eid: dict[str, object] = {}
        texts: dict[str, str] = {}
        attrs: dict[str, dict[str, str]] = {}
        for spec in self.specs:
            value = row[positions[spec.name]]
            if spec.role in ("id", "eid") and spec.element:
                by_element_eid[spec.element] = value
            elif spec.role == "text" and spec.element:
                if value is not None:
                    texts[spec.element] = str(value)
            elif spec.role == "attr" and spec.element and spec.attribute:
                if value is not None:
                    attrs.setdefault(spec.element, {})[
                        spec.attribute
                    ] = str(value)
        parent_value = row[positions["parent"]]
        parent_eid = None if parent_value is None else int(parent_value)

        def build(element: str) -> ElementData | None:
            eid = by_element_eid.get(element)
            if eid is None:
                return None
            node = ElementData(
                element,
                int(eid),
                dict(attrs.get(element, {})),
                texts.get(element, ""),
            )
            for child in self.fragment.children_of(element):
                built = build(child.name)
                if built is not None:
                    node.add_child(built)
            return node

        root = build(self.fragment.root_name)
        if root is None:
            raise RelationalError(
                f"row in {self.table_name!r} has NULL id"
            )
        return root, parent_eid


class FragmentRelationMapper:
    """Create, populate and scan the tables of one fragmentation."""

    def __init__(self, fragmentation: Fragmentation) -> None:
        self.fragmentation = fragmentation
        self.layouts: dict[str, _FragmentLayout] = {
            fragment.name: _FragmentLayout(fragment)
            for fragment in fragmentation
        }
        # One lock per fragment table: the parallel executor scans and
        # writes concurrently, and while distinct fragments always hit
        # distinct tables, same-table access must serialize.
        self._table_locks: dict[str, threading.Lock] = {
            name: threading.Lock() for name in self.layouts
        }

    def layout_for(self, fragment: Fragment) -> _FragmentLayout:
        """The layout of ``fragment``'s table.

        Raises:
            RelationalError: if the fragment is not part of the
                registered fragmentation.
        """
        try:
            return self.layouts[fragment.name]
        except KeyError as exc:
            raise RelationalError(
                f"fragment {fragment.name!r} is not stored under "
                f"fragmentation {self.fragmentation.name!r}"
            ) from exc

    def table_name(self, fragment: Fragment) -> str:
        """Table that stores ``fragment``."""
        return self.layout_for(fragment).table_name

    # -- DDL ---------------------------------------------------------------------

    def create_tables(self, db: Database) -> None:
        """Create one (empty) table per fragment."""
        for layout in self.layouts.values():
            db.create_table(layout.table_schema())

    def create_indexes(self, db: Database) -> int:
        """Create and build the standard indexes (hash on ``id`` and on
        ``parent``) on every fragment table; returns indexes built.
        This is the separately-timed indexing step of Table 4."""
        built = 0
        for layout in self.layouts.values():
            table = db.table(layout.table_name)
            for column in ("id", "parent"):
                if table.get_index(column) is None:
                    key = f"hash:{column}"
                    if key in table.indexes:
                        table.indexes[key].build(table.rows)
                    else:
                        table.create_index(column, "hash")
                    built += 1
        return built

    # -- loading --------------------------------------------------------------------

    def load_document(self, db: Database, root: ElementData) -> int:
        """Shred an in-memory document straight into the fragment
        tables (initial population of a source system); returns the
        number of rows loaded."""
        buffers: dict[str, list[tuple]] = {
            name: [] for name in self.layouts
        }

        def walk(node: ElementData, parent_eid: int | None) -> None:
            fragment = self.fragmentation.fragment_of(node.name)
            if fragment.root_name == node.name:
                layout = self.layouts[fragment.name]
                buffers[fragment.name].append(
                    layout.row_from_occurrence(node, parent_eid)
                )
            for group in node.children.values():
                for child in group:
                    walk(child, node.eid)

        walk(root, None)
        loaded = 0
        for name, rows in buffers.items():
            loaded += db.load(self.layouts[name].table_name, rows)
        return loaded

    def load_instance(self, db: Database, fragment: Fragment,
                      instance: FragmentInstance) -> int:
        """Bulk-load one fragment instance into its table (Write)."""
        return self.load_rows(db, fragment, instance.rows)

    def load_rows(self, db: Database, fragment: Fragment,
                  rows: Iterable[FragmentRow]) -> int:
        """Bulk-load a slice of a fragment's feed into its table — the
        per-batch unit of a streaming Write."""
        layout = self.layout_for(fragment)
        flat = [
            layout.row_from_occurrence(row.data, row.parent)
            for row in rows
        ]
        with self._table_locks[fragment.name]:
            return db.load(layout.table_name, flat)

    def delete_rows(self, db: Database, fragment: Fragment,
                    eids: Iterable[int]) -> int:
        """Delete fragment rows by root eid (the ``id`` primary key) —
        the removal half of a delta merge; returns rows removed."""
        layout = self.layout_for(fragment)
        with self._table_locks[fragment.name]:
            return db.table(layout.table_name).delete_where(
                "id", eids
            )

    # -- scanning ----------------------------------------------------------------------

    def _sorted_feed(self, db: Database, fragment: Fragment
                     ) -> tuple["_FragmentLayout", dict[str, int],
                                list[tuple]]:
        """The raw sorted feed of a fragment's table plus its layout."""
        layout = self.layout_for(fragment)
        with self._table_locks[fragment.name]:
            result = db.execute(
                f"SELECT * FROM {layout.table_name} ORDER BY parent, id"
            )
        positions = {
            name.lower(): index
            for index, name in enumerate(result.columns)
        }
        return layout, positions, result.rows

    def scan_fragment(self, db: Database,
                      fragment: Fragment) -> FragmentInstance:
        """Read a fragment back as a sorted feed (Scan, Def. 3.6)."""
        layout, positions, raw_rows = self._sorted_feed(db, fragment)
        rows = []
        for raw in raw_rows:
            data, parent_eid = layout.occurrence_from_row(raw, positions)
            rows.append(FragmentRow(data, parent_eid))
        return FragmentInstance(fragment, rows)

    def scan_fragment_batches(self, db: Database, fragment: Fragment,
                              batch_rows: int) -> Iterator[RowBatch]:
        """Read a fragment as a stream of batches (streaming Scan).

        The raw tuples come from the same sorted ``SELECT`` as
        :meth:`scan_fragment`, but the nested :class:`ElementData`
        occurrences — the expensive, memory-heavy representation — are
        built lazily one batch at a time, so only ``batch_rows`` worth
        of trees exist per pulled batch.
        """
        layout, positions, raw_rows = self._sorted_feed(db, fragment)

        def generate() -> Iterator[RowBatch]:
            buffer: list[FragmentRow] = []
            seq = 0
            for raw in raw_rows:
                data, parent_eid = layout.occurrence_from_row(
                    raw, positions
                )
                buffer.append(FragmentRow(data, parent_eid))
                if len(buffer) >= batch_rows:
                    yield RowBatch(fragment, buffer, seq)
                    seq += 1
                    buffer = []
            if buffer:
                yield RowBatch(fragment, buffer, seq)

        return generate()

    def scan_fragment_columns(self, db: Database, fragment: Fragment,
                              batch_rows: int
                              ) -> Iterator[ColumnBatch]:
        """Read a fragment as a stream of columnar batches.

        Same sorted ``SELECT`` as :meth:`scan_fragment`, but no trees
        are built at all: the raw tuples are transposed into the
        fragment's column arrays, normalized to the dataplane's cell
        invariant (keys as ``int``/``None``; text of a present element
        is a string — SQL ``NULL`` normalizes to ``""`` exactly as the
        tree round-trip does; cells of absent elements are ``None``).
        """
        layout, positions, raw_rows = self._sorted_feed(db, fragment)
        specs = layout.specs
        # Presence of an element is keyed by its id/eid column.
        key_positions = {
            spec.element: positions[spec.name]
            for spec in specs
            if spec.role in ("id", "eid") and spec.element
        }

        def generate() -> Iterator[ColumnBatch]:
            seq = 0
            for start in range(0, len(raw_rows), batch_rows):
                chunk = raw_rows[start:start + batch_rows]
                columns: list[list] = []
                for spec in specs:
                    at = positions[spec.name]
                    if spec.role == "id":
                        cells: list = []
                        for raw in chunk:
                            value = raw[at]
                            if value is None:
                                raise RelationalError(
                                    f"row in {layout.table_name!r} "
                                    "has NULL id"
                                )
                            cells.append(int(value))
                    elif spec.role in ("parent", "eid"):
                        cells = [
                            None if raw[at] is None else int(raw[at])
                            for raw in chunk
                        ]
                    elif spec.role == "text":
                        key_at = key_positions[spec.element]
                        cells = [
                            None if raw[key_at] is None
                            else "" if raw[at] is None
                            else str(raw[at])
                            for raw in chunk
                        ]
                    else:  # attr
                        key_at = key_positions[spec.element]
                        cells = [
                            None if (raw[key_at] is None
                                     or raw[at] is None)
                            else str(raw[at])
                            for raw in chunk
                        ]
                    columns.append(cells)
                yield ColumnBatch(fragment, columns, seq, layout)
                seq += 1

        return generate()

    def load_columns(self, db: Database, fragment: Fragment,
                     batch: ColumnBatch) -> int:
        """Bulk-load one columnar batch into the fragment's table —
        the per-batch unit of a columnar Write.  The batch's layout
        matches the table's column order by construction, so this is a
        straight transpose-and-load with no tree flattening."""
        layout = self.layout_for(fragment)
        rows = batch.row_tuples()
        with self._table_locks[fragment.name]:
            return db.load(layout.table_name, rows)

    def truncate_all(self, db: Database) -> None:
        """Empty every fragment table (fresh target before a run)."""
        for layout in self.layouts.values():
            db.table(layout.table_name).truncate()
