"""Relational schemas: columns, tables, keys."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TableError
from repro.relational.types import ColumnType


@dataclass(frozen=True, slots=True)
class Column:
    """One column: name, type, nullability."""

    name: str
    type: ColumnType
    nullable: bool = True


@dataclass(slots=True)
class TableSchema:
    """A table definition with an optional primary key.

    Column names are case-preserving but matched case-insensitively,
    like MySQL's default collation for identifiers.
    """

    name: str
    columns: list[Column]
    primary_key: str | None = None
    _positions: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.columns:
            raise TableError(f"table {self.name!r} needs columns")
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._positions:
                raise TableError(
                    f"duplicate column {column.name!r} in {self.name!r}"
                )
            self._positions[key] = position
        if (self.primary_key is not None
                and self.primary_key.lower() not in self._positions):
            raise TableError(
                f"primary key {self.primary_key!r} is not a column of "
                f"{self.name!r}"
            )

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def position(self, name: str) -> int:
        """Index of column ``name`` (case-insensitive).

        Raises:
            TableError: if the column does not exist.
        """
        try:
            return self._positions[name.lower()]
        except KeyError as exc:
            raise TableError(
                f"table {self.name!r} has no column {name!r}"
            ) from exc

    def has_column(self, name: str) -> bool:
        """True if ``name`` is a column (case-insensitive)."""
        return name.lower() in self._positions

    def column(self, name: str) -> Column:
        """The column named ``name``."""
        return self.columns[self.position(name)]
