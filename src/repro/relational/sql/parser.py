"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.relational.sql.ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    ColumnRef,
    Condition,
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Join,
    Literal,
    Select,
    SelectItem,
    Statement,
    TableRef,
    Update,
)
from repro.relational.sql.lexer import Token, tokenize

_RESERVED = {
    "SELECT", "FROM", "WHERE", "JOIN", "ON", "ORDER", "BY", "LIMIT",
    "AND", "AS", "INSERT", "INTO", "VALUES", "DELETE", "CREATE",
    "TABLE", "INDEX", "SORTED", "NOT", "NULL", "PRIMARY", "KEY",
    "COUNT", "SUM", "MIN", "MAX", "AVG", "GROUP", "ASC", "DESC", "IS",
    "UPDATE", "SET",
}


class _Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(
            f"{message} near {token.text!r} (offset {token.position})"
        )

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == "symbol" and token.text == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise self.error(f"expected {symbol!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident" or token.text.upper() in _RESERVED:
            raise self.error("expected an identifier")
        return self.advance().text

    # -- entry point ------------------------------------------------------------

    def parse(self) -> Statement:
        if self.peek().is_keyword("SELECT"):
            statement: Statement = self.select()
        elif self.peek().is_keyword("INSERT"):
            statement = self.insert()
        elif self.peek().is_keyword("UPDATE"):
            statement = self.update()
        elif self.peek().is_keyword("DELETE"):
            statement = self.delete()
        elif self.peek().is_keyword("CREATE"):
            statement = self.create()
        else:
            raise self.error(
                "expected SELECT, INSERT, UPDATE, DELETE or CREATE"
            )
        self.accept_symbol(";")
        if self.peek().kind != "end":
            raise self.error("trailing input after statement")
        return statement

    # -- SELECT --------------------------------------------------------------------

    def select(self) -> Select:
        self.expect_keyword("SELECT")
        items: list[SelectItem] = []
        if self.accept_symbol("*"):
            pass  # empty items means SELECT *
        else:
            items.append(self.select_item())
            while self.accept_symbol(","):
                items.append(self.select_item())
        self.expect_keyword("FROM")
        table = self.table_ref()
        joins: list[Join] = []
        while self.accept_keyword("JOIN"):
            joined = self.table_ref()
            self.expect_keyword("ON")
            left = self.column_ref()
            self.expect_symbol("=")
            right = self.column_ref()
            joins.append(Join(joined, left, right))
        where = self.where_clause()
        group_by: list[ColumnRef] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.column_ref())
            while self.accept_symbol(","):
                group_by.append(self.column_ref())
        order_by: list[tuple[ColumnRef, bool]] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.order_term())
            while self.accept_symbol(","):
                order_by.append(self.order_term())
        limit: int | None = None
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.kind != "number":
                raise self.error("LIMIT expects a number")
            self.advance()
            limit = int(token.text)
        return Select(items, table, joins, where, group_by, order_by,
                      limit)

    def select_item(self) -> SelectItem:
        expression: ColumnRef | Aggregate
        token = self.peek()
        if (token.kind == "ident"
                and token.text.upper() in AGGREGATE_FUNCTIONS):
            func = self.advance().text.upper()
            self.expect_symbol("(")
            if func == "COUNT" and self.accept_symbol("*"):
                expression = Aggregate("COUNT", None)
            else:
                expression = Aggregate(func, self.column_ref())
            self.expect_symbol(")")
        else:
            expression = self.column_ref()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return SelectItem(expression, alias)

    def order_term(self) -> tuple[ColumnRef, bool]:
        column = self.column_ref()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return column, ascending

    def table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif (self.peek().kind == "ident"
                and self.peek().text.upper() not in _RESERVED):
            alias = self.advance().text
        return TableRef.of(name, alias)

    def column_ref(self) -> ColumnRef:
        first = self.expect_ident()
        if self.accept_symbol("."):
            return ColumnRef(first, self.expect_ident())
        return ColumnRef(None, first)

    def where_clause(self) -> list[Condition]:
        conditions: list[Condition] = []
        if self.accept_keyword("WHERE"):
            conditions.append(self.condition())
            while self.accept_keyword("AND"):
                conditions.append(self.condition())
        return conditions

    def condition(self) -> Condition:
        left = self.column_ref()
        if self.accept_keyword("IS"):
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                return Condition(left, "IS NOT NULL", None)
            self.expect_keyword("NULL")
            return Condition(left, "IS NULL", None)
        token = self.peek()
        if token.kind != "symbol" or token.text not in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            raise self.error("expected a comparison operator")
        self.advance()
        op = "!=" if token.text == "<>" else token.text
        return Condition(left, op, self.value_or_column())

    def value_or_column(self) -> ColumnRef | Literal:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(
                token.text)
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        return self.column_ref()

    # -- INSERT / DELETE ----------------------------------------------------------------

    def insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: list[str] | None = None
        if self.accept_symbol("("):
            columns = [self.expect_ident()]
            while self.accept_symbol(","):
                columns.append(self.expect_ident())
            self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows = [self.value_tuple()]
        while self.accept_symbol(","):
            rows.append(self.value_tuple())
        return Insert(table, rows, columns)

    def value_tuple(self) -> list[object]:
        self.expect_symbol("(")
        values = [self.literal_value()]
        while self.accept_symbol(","):
            values.append(self.literal_value())
        self.expect_symbol(")")
        return values

    def literal_value(self) -> object:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return float(token.text) if "." in token.text else int(
                token.text)
        if token.kind == "string":
            self.advance()
            return token.text
        if token.is_keyword("NULL"):
            self.advance()
            return None
        raise self.error("expected a literal value")

    def update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.assignment()]
        while self.accept_symbol(","):
            assignments.append(self.assignment())
        return Update(table, assignments, self.where_clause())

    def assignment(self) -> tuple[str, object]:
        column = self.expect_ident()
        self.expect_symbol("=")
        return column, self.literal_value()

    def delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        return Delete(table, self.where_clause())

    # -- CREATE ------------------------------------------------------------------------------

    def create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.create_table()
        kind = "hash"
        if self.accept_keyword("SORTED"):
            kind = "sorted"
        self.expect_keyword("INDEX")
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_symbol("(")
        column = self.expect_ident()
        self.expect_symbol(")")
        return CreateIndex(table, column, kind)

    def create_table(self) -> CreateTable:
        name = self.expect_ident()
        self.expect_symbol("(")
        columns: list[tuple[str, str, bool, bool]] = []
        while True:
            column_name = self.expect_ident()
            type_token = self.peek()
            if type_token.kind != "ident":
                raise self.error("expected a column type")
            self.advance()
            not_null = False
            primary_key = False
            while True:
                if self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    not_null = True
                elif self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    primary_key = True
                    not_null = True
                else:
                    break
            columns.append(
                (column_name, type_token.text, not_null, primary_key)
            )
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return CreateTable(name, columns)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement.

    Raises:
        SqlSyntaxError: on malformed input.
    """
    return _Parser(sql).parse()
