"""Execute parsed SQL against a database's tables.

Joins are hash joins on the equi-join key (build on the smaller input);
filters use a hash index when one is built on the filtered column of a
single-table query; ORDER BY is an explicit sort.  Sorted feeds — the
publisher's and Scan's ``ORDER BY parent, id`` queries — therefore cost
what they should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import SqlSyntaxError, TableError
from repro.relational.schema import Column, TableSchema
from repro.relational.sql.ast import (
    Aggregate,
    ColumnRef,
    Condition,
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Literal,
    Select,
    Statement,
    TableRef,
    Update,
)
from repro.relational.types import ColumnType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.engine import Database


@dataclass(slots=True)
class Result:
    """Query result: column names plus rows (tuples).

    Data-modifying statements return an empty ``columns`` list and
    report the affected row count in ``rowcount``.
    """

    columns: list[str]
    rows: list[tuple]
    rowcount: int = 0

    def scalar(self) -> object:
        """The single value of a one-row, one-column result.

        Raises:
            TableError: if the shape is not 1×1.
        """
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise TableError("result is not a single scalar")
        return self.rows[0][0]


class _Frame:
    """Column binding environment for joined rows."""

    def __init__(self) -> None:
        self.slots: list[tuple[str, str]] = []  # (alias, column)
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_column: dict[str, list[int]] = {}

    def extend(self, ref: TableRef, schema: TableSchema) -> None:
        alias = ref.alias.lower()
        for column in schema.column_names():
            position = len(self.slots)
            self.slots.append((ref.alias, column))
            self._by_qualified[(alias, column.lower())] = position
            self._by_column.setdefault(column.lower(), []).append(position)

    def resolve(self, ref: ColumnRef) -> int:
        if ref.table is not None:
            try:
                return self._by_qualified[
                    (ref.table.lower(), ref.column.lower())
                ]
            except KeyError as exc:
                raise TableError(f"unknown column {ref}") from exc
        positions = self._by_column.get(ref.column.lower(), [])
        if not positions:
            raise TableError(f"unknown column {ref}")
        if len(positions) > 1:
            raise TableError(f"ambiguous column {ref}")
        return positions[0]


def execute_statement(db: "Database", statement: Statement) -> Result:
    """Execute ``statement`` against ``db``.

    Raises:
        TableError: for schema violations.
        SqlSyntaxError: for statements the executor cannot plan.
    """
    if isinstance(statement, Select):
        return _select(db, statement)
    if isinstance(statement, Insert):
        return _insert(db, statement)
    if isinstance(statement, Update):
        return _update(db, statement)
    if isinstance(statement, Delete):
        return _delete(db, statement)
    if isinstance(statement, CreateTable):
        return _create_table(db, statement)
    if isinstance(statement, CreateIndex):
        table = db.table(statement.table)
        table.create_index(statement.column, statement.kind)
        return Result([], [], 0)
    raise SqlSyntaxError(f"cannot execute {statement!r}")


def _create_table(db: "Database", statement: CreateTable) -> Result:
    columns = []
    primary_key = None
    for name, sql_type, not_null, is_pk in statement.columns:
        columns.append(
            Column(name, ColumnType.from_sql(sql_type), nullable=not not_null)
        )
        if is_pk:
            if primary_key is not None:
                raise TableError(
                    f"table {statement.name!r} has two primary keys"
                )
            primary_key = name
    db.create_table(TableSchema(statement.name, columns, primary_key))
    return Result([], [], 0)


def _insert(db: "Database", statement: Insert) -> Result:
    table = db.table(statement.table)
    if statement.columns is None:
        for values in statement.rows:
            table.insert(values)
        return Result([], [], len(statement.rows))
    positions = [
        table.schema.position(column) for column in statement.columns
    ]
    if len(set(positions)) != len(positions):
        raise TableError("duplicate column in INSERT column list")
    for values in statement.rows:
        if len(values) != len(positions):
            raise TableError(
                f"INSERT expects {len(positions)} values, "
                f"got {len(values)}"
            )
        row: list[object] = [None] * table.schema.arity
        for position, value in zip(positions, values):
            row[position] = value
        table.insert(row)
    return Result([], [], len(statement.rows))


def _condition_check(frame: _Frame,
                     condition: Condition) -> Callable[[tuple], bool]:
    left = frame.resolve(condition.left)
    op = condition.op
    if op == "IS NULL":
        return lambda row: row[left] is None
    if op == "IS NOT NULL":
        return lambda row: row[left] is not None
    if isinstance(condition.right, Literal):
        constant = condition.right.value
        get_right: Callable[[tuple], object] = lambda row: constant
    else:
        right = frame.resolve(condition.right)
        get_right = lambda row: row[right]  # noqa: E731

    comparators: dict[str, Callable[[object, object], bool]] = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    compare = comparators[op]

    def check(row: tuple) -> bool:
        a = row[left]
        b = get_right(row)
        if a is None or b is None:
            return False  # SQL three-valued logic: NULL never matches
        return compare(a, b)

    return check


def _select(db: "Database", statement: Select) -> Result:
    frame = _Frame()
    base = db.table(statement.table.name)
    frame.extend(statement.table, base.schema)

    rows: list[tuple]
    conditions = list(statement.where)
    # Index-assisted single-table equality filter.
    index_filter = _try_index_filter(db, statement)
    if index_filter is not None:
        rows, conditions = index_filter
    else:
        rows = list(base.scan())

    for join in statement.joins:
        joined_table = db.table(join.table.name)
        # Determine which side of ON refers to the already-built frame;
        # the other side must be a column of the joined table.
        try:
            probe_position = frame.resolve(join.left)
            build_ref = join.right
        except TableError:
            probe_position = frame.resolve(join.right)
            build_ref = join.left
        frame.extend(join.table, joined_table.schema)
        build_index = joined_table.schema.position(build_ref.column)
        buckets: dict[object, list[tuple]] = {}
        for row in joined_table.scan():
            key = row[build_index]
            if key is not None:
                buckets.setdefault(key, []).append(row)
        joined_rows: list[tuple] = []
        for row in rows:
            key = row[probe_position]
            if key is None:
                continue
            for match in buckets.get(key, ()):
                joined_rows.append(row + match)
        rows = joined_rows

    checks = [
        _condition_check(frame, condition) for condition in conditions
    ]
    if checks:
        rows = [
            row for row in rows if all(check(row) for check in checks)
        ]

    if statement.is_aggregate:
        names, rows = _aggregate(frame, statement, rows)
        if statement.order_by:
            output_positions = {
                name.lower(): index
                for index, name in enumerate(names)
            }
            terms = []
            for ref, ascending in statement.order_by:
                try:
                    terms.append(
                        (output_positions[ref.column.lower()],
                         ascending)
                    )
                except KeyError as exc:
                    raise TableError(
                        f"ORDER BY {ref} must name an output column "
                        "of an aggregate query"
                    ) from exc
            for position, ascending in reversed(terms):
                rows.sort(
                    key=lambda row: (
                        row[position] is None, row[position],
                    ),
                    reverse=not ascending,
                )
    else:
        # Plain queries sort on frame columns (selected or not),
        # then project.
        if statement.order_by:
            terms = [
                (frame.resolve(ref), ascending)
                for ref, ascending in statement.order_by
            ]
            for position, ascending in reversed(terms):
                rows.sort(
                    key=lambda row: (
                        row[position] is None, row[position],
                    ),
                    reverse=not ascending,
                )
        if not statement.items:  # SELECT *
            names = [column for _, column in frame.slots]
        else:
            positions = [
                frame.resolve(item.expression)
                for item in statement.items
            ]
            names = [item.output_name() for item in statement.items]
            rows = [
                tuple(row[position] for position in positions)
                for row in rows
            ]

    if statement.limit is not None:
        rows = rows[: statement.limit]
    return Result(names, rows, 0)


def _aggregate(frame: _Frame, statement: Select,
               rows: list[tuple]) -> tuple[list[str], list[tuple]]:
    """Grouped (or whole-input) aggregation."""
    group_positions = [
        frame.resolve(ref) for ref in statement.group_by
    ]
    grouped_names = {
        ref.column.lower() for ref in statement.group_by
    }
    for item in statement.items:
        if isinstance(item.expression, ColumnRef) \
                and item.expression.column.lower() not in grouped_names:
            raise TableError(
                f"column {item.expression} must appear in GROUP BY"
            )

    groups: dict[tuple, list[tuple]] = {}
    if group_positions:
        for row in rows:
            key = tuple(row[position] for position in group_positions)
            groups.setdefault(key, []).append(row)
    else:
        groups[()] = rows  # a single group, possibly empty

    def evaluate(expression: ColumnRef | Aggregate, key: tuple,
                 members: list[tuple]) -> object:
        if isinstance(expression, ColumnRef):
            position = frame.resolve(expression)
            index = group_positions.index(position)
            return key[index]
        if expression.column is None:  # COUNT(*)
            return len(members)
        position = frame.resolve(expression.column)
        values = [
            row[position] for row in members
            if row[position] is not None
        ]
        if expression.func == "COUNT":
            return len(values)
        if not values:
            return None
        if expression.func == "SUM":
            return sum(values)
        if expression.func == "MIN":
            return min(values)
        if expression.func == "MAX":
            return max(values)
        return sum(values) / len(values)  # AVG

    names = [item.output_name() for item in statement.items]
    ordered_keys = sorted(
        groups,
        key=lambda key: tuple(
            (value is None, value) for value in key
        ),
    )
    output = [
        tuple(
            evaluate(item.expression, key, groups[key])
            for item in statement.items
        )
        for key in ordered_keys
    ]
    return names, output


def _update(db: "Database", statement: Update) -> Result:
    table = db.table(statement.table)
    frame = _Frame()
    frame.extend(TableRef.of(statement.table), table.schema)
    checks = [
        _condition_check(frame, condition)
        for condition in statement.where
    ]
    assignments = [
        (table.schema.position(column),
         table.schema.column(column).type.coerce(value))
        for column, value in statement.assignments
    ]
    changed = 0
    for row_id, row in enumerate(table.rows):
        if checks and not all(check(row) for check in checks):
            continue
        values = list(row)
        for position, value in assignments:
            values[position] = value
        table.rows[row_id] = tuple(values)
        changed += 1
    if changed:
        for index in table.indexes.values():
            index.build(table.rows)
    return Result([], [], changed)


def _try_index_filter(
    db: "Database", statement: Select
) -> tuple[list[tuple], list[Condition]] | None:
    """Use a hash index for ``WHERE col = literal`` on a plain table.

    Returns the pre-filtered rows plus the conditions still to apply,
    or ``None`` when no built index matches the query shape.
    """
    if statement.joins or len(statement.where) == 0:
        return None
    condition = statement.where[0]
    if condition.op != "=" or not isinstance(condition.right, Literal):
        return None
    table = db.table(statement.table.name)
    if (condition.left.table is not None
            and condition.left.table.lower()
            != statement.table.alias.lower()):
        return None
    if not table.schema.has_column(condition.left.column):
        return None
    index = table.get_index(condition.left.column, "hash")
    if index is None:
        return None
    matched = [
        table.rows[row_id]
        for row_id in index.lookup(condition.right.value)
    ]
    return matched, statement.where[1:]


def _delete(db: "Database", statement: Delete) -> Result:
    table = db.table(statement.table)
    frame = _Frame()
    frame.extend(TableRef.of(statement.table), table.schema)
    checks = [
        _condition_check(frame, condition) for condition in statement.where
    ]
    if not checks:
        removed = len(table.rows)
        table.truncate()
        return Result([], [], removed)
    kept = [
        row for row in table.rows
        if not all(check(row) for check in checks)
    ]
    removed = len(table.rows) - len(kept)
    table.rows = kept
    for index in table.indexes.values():
        index.build(table.rows)
    return Result([], [], removed)
