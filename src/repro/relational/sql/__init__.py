"""A small SQL subset: the dialect the exchange workloads need.

Supported statements::

    CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT NOT NULL, c REAL)
    CREATE INDEX ON t (b)            -- hash
    CREATE SORTED INDEX ON t (b)     -- ordered
    INSERT INTO t VALUES (1, 'x', 2.5), (2, 'y', NULL)
    SELECT a, u.b FROM t JOIN u ON t.a = u.fk WHERE a >= 2 AND u.b = 'y'
        ORDER BY a DESC, b LIMIT 10
    SELECT COUNT(*) FROM t WHERE c IS NOT NULL
    DELETE FROM t WHERE a = 1

This is what the paper's systems run underneath ``Scan`` (a SELECT with
ORDER BY producing a sorted feed), the publisher's per-fragment queries,
and the loader.
"""

from repro.relational.sql.ast import (
    ColumnRef,
    Condition,
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Select,
    Statement,
)
from repro.relational.sql.executor import Result, execute_statement
from repro.relational.sql.parser import parse_sql

__all__ = [
    "parse_sql",
    "execute_statement",
    "Result",
    "Statement",
    "Select",
    "Insert",
    "Delete",
    "CreateTable",
    "CreateIndex",
    "ColumnRef",
    "Condition",
]
