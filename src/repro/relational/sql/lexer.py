"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

_SYMBOLS = ("<=", ">=", "!=", "<>", "(", ")", ",", ".", "=", "<", ">", "*",
            ";")
_IDENT_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CHARS = _IDENT_START | set("0123456789$")


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``ident``, ``number``, ``string``, ``symbol``,
    ``end``.  Identifier ``text`` preserves case; keyword matching is
    case-insensitive at the parser level.
    """

    kind: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword test (identifiers double as
        keywords, like in real SQL lexers)."""
        return self.kind == "ident" and self.text.upper() == word.upper()


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; appends a sentinel ``end`` token.

    Raises:
        SqlSyntaxError: on unterminated strings or stray characters.
    """
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        ch = sql[position]
        if ch in " \t\r\n":
            position += 1
            continue
        if ch == "-" and sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if ch == "'":
            end = position + 1
            parts: list[str] = []
            while True:
                quote = sql.find("'", end)
                if quote == -1:
                    raise SqlSyntaxError(
                        f"unterminated string at offset {position}"
                    )
                if sql.startswith("''", quote):
                    parts.append(sql[end:quote] + "'")
                    end = quote + 2
                    continue
                parts.append(sql[end:quote])
                break
            tokens.append(Token("string", "".join(parts), position))
            position = quote + 1
            continue
        if ch.isdigit() or (
            ch in "+-" and position + 1 < length
            and sql[position + 1].isdigit()
            and _numeric_context(tokens)
        ):
            end = position + 1
            seen_dot = False
            while end < length and (sql[end].isdigit()
                                    or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token("number", sql[position:end], position))
            position = end
            continue
        if ch in _IDENT_START:
            end = position + 1
            while end < length and sql[end] in _IDENT_CHARS:
                end += 1
            tokens.append(Token("ident", sql[position:end], position))
            position = end
            continue
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, position):
                tokens.append(Token("symbol", symbol, position))
                position += len(symbol)
                break
        else:
            raise SqlSyntaxError(
                f"unexpected character {ch!r} at offset {position}"
            )
    tokens.append(Token("end", "", length))
    return tokens


def _numeric_context(tokens: list[Token]) -> bool:
    """A leading +/- starts a number only where a value may appear."""
    if not tokens:
        return True
    last = tokens[-1]
    return last.kind == "symbol" and last.text in ("(", ",", "=", "<", ">",
                                                   "<=", ">=", "!=", "<>")
