"""EXPLAIN: describe how the executor will evaluate a SELECT.

The engine's planning is deliberately simple (Section 5's systems are
MySQL 3.23-class); :func:`explain` makes it inspectable so the cost
claims in benchmarks can be sanity-checked against what actually runs:

* base access — sequential scan, or a hash-index lookup when the query
  is single-table with a leading ``col = literal`` filter and a built
  index exists;
* one hash join per JOIN clause (build on the joined table);
* residual filters, grouping/aggregation, sort, limit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SqlSyntaxError
from repro.relational.sql.ast import Literal, Select, Statement
from repro.relational.sql.parser import parse_sql

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.engine import Database


def explain(db: "Database", sql: str) -> str:
    """Return the evaluation plan of a SELECT as indented text.

    Raises:
        SqlSyntaxError: if the statement is not a SELECT.
    """
    statement = parse_sql(sql)
    return explain_statement(db, statement)


def explain_statement(db: "Database", statement: Statement) -> str:
    """Plan text for an already parsed statement."""
    if not isinstance(statement, Select):
        raise SqlSyntaxError("EXPLAIN supports SELECT statements only")

    lines: list[str] = []
    base = db.table(statement.table.name)
    index_condition = _index_candidate(db, statement)
    if index_condition is not None:
        lines.append(
            f"index lookup {statement.table.name} "
            f"using hash({index_condition.left.column}) "
            f"[{len(base)} rows stored]"
        )
        residual = len(statement.where) - 1
    else:
        lines.append(
            f"seq scan {statement.table.name} [{len(base)} rows]"
        )
        residual = len(statement.where)

    for join in statement.joins:
        joined = db.table(join.table.name)
        lines.append(
            f"hash join build={join.table.name} "
            f"[{len(joined)} rows] on {join.left} = {join.right}"
        )
    if residual:
        lines.append(f"filter ({residual} predicate"
                     f"{'s' if residual != 1 else ''})")
    if statement.is_aggregate:
        if statement.group_by:
            keys = ", ".join(str(ref) for ref in statement.group_by)
            lines.append(f"hash aggregate group by ({keys})")
        else:
            lines.append("aggregate (single group)")
    if statement.order_by:
        terms = ", ".join(
            f"{ref}{'' if ascending else ' DESC'}"
            for ref, ascending in statement.order_by
        )
        lines.append(f"sort ({terms})")
    if statement.limit is not None:
        lines.append(f"limit {statement.limit}")
    projected = (
        "*" if not statement.items
        else ", ".join(item.output_name() for item in statement.items)
    )
    lines.append(f"project ({projected})")
    return "\n".join(
        ("  " * depth) + line for depth, line in enumerate(lines)
    )


def _index_candidate(db: "Database", statement: Select):
    """Mirror the executor's index-filter applicability test."""
    if statement.joins or not statement.where:
        return None
    condition = statement.where[0]
    if condition.op != "=" or not isinstance(condition.right, Literal):
        return None
    table = db.table(statement.table.name)
    if (condition.left.table is not None
            and condition.left.table.lower()
            != statement.table.alias.lower()):
        return None
    if not table.schema.has_column(condition.left.column):
        return None
    if table.get_index(condition.left.column, "hash") is None:
        return None
    return condition
