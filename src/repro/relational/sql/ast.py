"""SQL abstract syntax."""

from __future__ import annotations

from dataclasses import dataclass, field

AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "MIN", "MAX", "AVG")


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A possibly-qualified column reference (``t.a`` or ``a``)."""

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True, slots=True)
class Aggregate:
    """An aggregate call: ``COUNT(*)``, ``SUM(col)``, ...

    ``column is None`` only for ``COUNT(*)``.
    """

    func: str
    column: ColumnRef | None = None

    def default_name(self) -> str:
        if self.column is None:
            return "count"
        return f"{self.func.lower()}_{self.column.column}"


@dataclass(frozen=True, slots=True)
class SelectItem:
    """One output column: an expression plus an optional alias."""

    expression: ColumnRef | Aggregate
    alias: str | None = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, Aggregate):
            return self.expression.default_name()
        return self.expression.column


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant value (int, float, str or None)."""

    value: object


@dataclass(frozen=True, slots=True)
class Condition:
    """A comparison ``left op right``.

    ``op`` ∈ {=, !=, <, <=, >, >=, IS NULL, IS NOT NULL}; for the IS
    variants ``right`` is ignored.
    """

    left: ColumnRef
    op: str
    right: ColumnRef | Literal | None


@dataclass(frozen=True, slots=True)
class TableRef:
    """A table with an optional alias."""

    name: str
    alias: str

    @classmethod
    def of(cls, name: str, alias: str | None = None) -> "TableRef":
        return cls(name, alias or name)


@dataclass(frozen=True, slots=True)
class Join:
    """``JOIN table ON left = right`` (equi-joins only)."""

    table: TableRef
    left: ColumnRef
    right: ColumnRef


class Statement:
    """Marker base class for parsed statements."""


@dataclass(slots=True)
class Select(Statement):
    """A SELECT query.

    ``items`` empty means ``SELECT *``.
    """

    items: list[SelectItem]
    table: TableRef
    joins: list[Join] = field(default_factory=list)
    where: list[Condition] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[tuple[ColumnRef, bool]] = field(default_factory=list)
    limit: int | None = None

    @property
    def is_aggregate(self) -> bool:
        """True if any output item aggregates (or GROUP BY is present)."""
        return bool(self.group_by) or any(
            isinstance(item.expression, Aggregate) for item in self.items
        )


@dataclass(slots=True)
class Insert(Statement):
    """INSERT INTO ... [(columns)] VALUES (...), (...)."""

    table: str
    rows: list[list[object]]
    columns: list[str] | None = None


@dataclass(slots=True)
class Update(Statement):
    """UPDATE t SET col = literal [, ...] [WHERE ...]."""

    table: str
    assignments: list[tuple[str, object]]
    where: list[Condition] = field(default_factory=list)


@dataclass(slots=True)
class Delete(Statement):
    """DELETE FROM ... [WHERE ...]."""

    table: str
    where: list[Condition] = field(default_factory=list)


@dataclass(slots=True)
class CreateTable(Statement):
    """CREATE TABLE with column definitions."""

    name: str
    columns: list[tuple[str, str, bool, bool]]
    #: (name, sql type, not_null, primary_key) per column


@dataclass(slots=True)
class CreateIndex(Statement):
    """CREATE [SORTED] INDEX ON table (column)."""

    table: str
    column: str
    kind: str = "hash"
