"""Row storage with type checking and bulk loading."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import TableError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import TableSchema


class Table:
    """An append-oriented heap of typed rows plus its indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple] = []
        self.indexes: dict[str, HashIndex | SortedIndex] = {}

    # -- writes ---------------------------------------------------------------

    def _coerced(self, values: Sequence[object]) -> tuple:
        columns = self.schema.columns
        if len(values) != len(columns):
            raise TableError(
                f"table {self.schema.name!r} expects "
                f"{len(columns)} values, got {len(values)}"
            )
        row = []
        for column, value in zip(columns, values):
            coerced = column.type.coerce(value)
            if coerced is None and not column.nullable:
                raise TableError(
                    f"column {column.name!r} of {self.schema.name!r} "
                    "is NOT NULL"
                )
            row.append(coerced)
        return tuple(row)

    def insert(self, values: Sequence[object]) -> int:
        """Insert one row (maintains existing indexes); returns row id."""
        row = self._coerced(values)
        row_id = len(self.rows)
        self.rows.append(row)
        for index in self.indexes.values():
            index.add(row_id, row)
        return row_id

    def bulk_load(self, rows: Iterable[Sequence[object]]) -> int:
        """Append many rows *without* touching indexes (LOAD semantics —
        the paper's Table 4 times loading and indexing separately);
        returns the number of rows loaded."""
        count = 0
        append = self.rows.append
        for values in rows:
            append(self._coerced(values))
            count += 1
        for index in self.indexes.values():
            index.built = False
        return count

    def truncate(self) -> None:
        """Remove all rows (indexes are emptied too)."""
        self.rows.clear()
        for index in self.indexes.values():
            index.build(self.rows)

    def delete_where(self, column: str,
                     keys: Iterable[object]) -> int:
        """Delete rows whose ``column`` value is in ``keys``; returns
        how many were removed.  Indexes go stale (DELETE then rebuild,
        matching the separately timed LOAD/INDEX discipline).

        Raises:
            TableError: for unknown columns.
        """
        position = self.schema.position(column)
        wanted = set(keys)
        if not wanted:
            return 0
        before = len(self.rows)
        self.rows = [
            row for row in self.rows if row[position] not in wanted
        ]
        deleted = before - len(self.rows)
        if deleted:
            for index in self.indexes.values():
                index.built = False
        return deleted

    # -- indexes ------------------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash",
                     build: bool = True) -> HashIndex | SortedIndex:
        """Create (and optionally build) an index on ``column``.

        Raises:
            TableError: for unknown columns/kinds or duplicate indexes.
        """
        position = self.schema.position(column)
        key = f"{kind}:{column.lower()}"
        if key in self.indexes:
            raise TableError(
                f"index {key!r} already exists on {self.schema.name!r}"
            )
        if kind == "hash":
            index: HashIndex | SortedIndex = HashIndex(
                self.schema.name, column, position
            )
        elif kind == "sorted":
            index = SortedIndex(self.schema.name, column, position)
        else:
            raise TableError(f"unknown index kind {kind!r}")
        if build:
            index.build(self.rows)
        self.indexes[key] = index
        return index

    def build_indexes(self) -> int:
        """(Re)build all stale indexes; returns how many were rebuilt."""
        rebuilt = 0
        for index in self.indexes.values():
            if not index.built:
                index.build(self.rows)
                rebuilt += 1
        return rebuilt

    def get_index(self, column: str,
                  kind: str = "hash") -> HashIndex | SortedIndex | None:
        """Return a *built* index on ``column`` of ``kind``, else None."""
        index = self.indexes.get(f"{kind}:{column.lower()}")
        if index is not None and index.built:
            return index
        return None

    # -- reads -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self) -> Iterator[tuple]:
        """All rows in insertion order."""
        return iter(self.rows)

    def column_values(self, column: str) -> list[object]:
        """All values of one column, in row order."""
        position = self.schema.position(column)
        return [row[position] for row in self.rows]

    def estimated_bytes(self) -> int:
        """Rough storage footprint, for statistics and reports."""
        total = 0
        for row in self.rows:
            for value in row:
                if value is None:
                    total += 1
                elif isinstance(value, str):
                    total += len(value)
                else:
                    total += 8
        return total
