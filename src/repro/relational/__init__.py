"""An in-memory relational engine — the paper's MySQL stand-in.

The real experiment (Section 5) ran two MySQL 3.23 servers; this package
provides the equivalent substrate: typed tables
(:mod:`repro.relational.table`), hash and sorted indexes
(:mod:`repro.relational.index`), a database façade with a small SQL
subset (:mod:`repro.relational.engine`, :mod:`repro.relational.sql`),
plus the three XML-specific components the paper builds on top:

* :mod:`repro.relational.frag_store` — a fragmentation's relational
  schema (table per fragment) and fragment instance load/extract,
* :mod:`repro.relational.publisher` — optimized XML publishing from
  sorted feeds (merge & tag, after [6]),
* :mod:`repro.relational.shredder` — stack-based SAX shredding of XML
  into per-fragment tuple feeds (Section 5.1).
"""

from repro.relational.engine import Database
from repro.relational.frag_store import FragmentRelationMapper
from repro.relational.publisher import publish_document, publish_document_set
from repro.relational.schema import Column, TableSchema
from repro.relational.shredder import ShredResult, shred_document, shred_documents
from repro.relational.types import ColumnType

__all__ = [
    "Database",
    "Column",
    "TableSchema",
    "ColumnType",
    "FragmentRelationMapper",
    "publish_document",
    "publish_document_set",
    "shred_document",
    "shred_documents",
    "ShredResult",
]
