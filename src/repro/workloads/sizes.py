"""Document size ladder and scale handling.

The paper transfers documents of 2.5, 12.5 and 25 MB.  Re-running at
full size is supported (``REPRO_SCALE=1.0``), but the default scale
keeps the benchmark suite fast while preserving the paper's exact 1:5:10
size ratio, which is what the reported *shapes* depend on.
"""

from __future__ import annotations

import os

#: The paper's document sizes (Section 5), in megabytes.
DOCUMENT_SIZES_MB: tuple[float, ...] = (2.5, 12.5, 25.0)

#: Default fraction of the paper's sizes used by tests and benches.
DEFAULT_SCALE = 0.02


def current_scale() -> float:
    """The active scale factor (``REPRO_SCALE`` env var, default 0.02).

    Raises:
        ValueError: if the variable is set but not a positive float.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return DEFAULT_SCALE
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if scale <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return scale


def scaled_bytes(size_mb: float, scale: float | None = None) -> int:
    """Target byte size for one ladder entry under the active scale."""
    if scale is None:
        scale = current_scale()
    return int(size_mb * 1_000_000 * scale)


def size_label(size_mb: float) -> str:
    """The paper's label for a ladder entry, e.g. ``2.5MB``."""
    if size_mb == int(size_mb):
        return f"{int(size_mb)}MB"
    return f"{size_mb}MB"
