"""Random document generation for arbitrary schema trees.

Used by the simulation study and property tests: given any
:class:`~repro.schema.model.SchemaTree`, produce a conforming
:class:`~repro.core.instance.ElementData` document with fresh element
ids, seeded and therefore reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.instance import ElementData
from repro.schema.model import Cardinality, SchemaNode, SchemaTree

_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
)


class _EidCounter:
    def __init__(self, start: int = 1) -> None:
        self.next_eid = start

    def take(self) -> int:
        value = self.next_eid
        self.next_eid += 1
        return value


def _occurrences(node: SchemaNode, rng: random.Random,
                 max_repeat: int) -> int:
    if node.cardinality is Cardinality.ONE:
        return 1
    if node.cardinality is Cardinality.OPT:
        return rng.randint(0, 1)
    low = 1 if node.cardinality is Cardinality.PLUS else 0
    return rng.randint(low, max_repeat)


def generate_document(schema: SchemaTree, *, seed: int = 0,
                      max_repeat: int = 3,
                      text_words: int = 2) -> ElementData:
    """Generate a random document conforming to ``schema``.

    Args:
        schema: the schema tree to conform to.
        seed: RNG seed (documents are reproducible).
        max_repeat: maximum occurrences of a ``*``/``+`` element per
            parent.
        text_words: words of text per leaf element.
    """
    rng = random.Random(seed)
    counter = _EidCounter()

    def build(node: SchemaNode) -> ElementData:
        data = ElementData(node.name, counter.take())
        for attribute in node.attributes:
            data.attrs[attribute] = rng.choice(_WORDS)
        if node.is_leaf:
            data.text = " ".join(
                rng.choice(_WORDS) for _ in range(text_words)
            )
        for child in node.children:
            for _ in range(_occurrences(child, rng, max_repeat)):
                data.add_child(build(child))
        return data

    return build(schema.root)


def iter_leaf_texts(document: ElementData) -> Iterator[str]:
    """All leaf texts of a document, pre-order (test helper)."""
    for node in document.iter_all():
        if node.text:
            yield node.text
