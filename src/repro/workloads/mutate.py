"""Synthetic change workloads: mutate a versioned endpoint in place.

Delta exchange is exercised (tests, the CLI ``--delta`` flow, the
change-rate ablation) by mutating a deterministic fraction of a stored
instance between two runs.  :func:`mutate_endpoint` picks rows with a
seeded RNG, perturbs one text value per picked row, and applies the
changes through :meth:`~repro.services.endpoint.SystemEndpoint.
apply_changes` — so every mutation is stamped in the endpoint's
:class:`~repro.core.delta.VersionLog` exactly as a live system's
writes would be.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.instance import ElementData, FragmentRow
from repro.services.endpoint import SystemEndpoint


@dataclass(slots=True)
class MutationReport:
    """What one :func:`mutate_endpoint` call changed."""

    version: int = 0
    updated: int = 0
    deleted: int = 0
    by_fragment: dict[str, int] = field(default_factory=dict)


def _perturb(data: ElementData) -> None:
    """Flip one text value of the row (first node with text, else the
    root): appends a marker or strips it, so mutating twice with the
    same pick round-trips."""
    node = data
    for candidate in data.iter_all():
        if candidate.text:
            node = candidate
            break
    if node.text.endswith("~"):
        node.text = node.text[:-1]
    else:
        node.text = node.text + "~"


def _deletable_fragments(endpoint: SystemEndpoint) -> list[str]:
    """Fragments no other fragment anchors into — deleting their rows
    cascades nowhere, keeping delete workloads row-sized."""
    fragments = endpoint.stored_fragments()
    anchored = {
        fragment.parent_element()
        for fragment in fragments
        if fragment.parent_element() is not None
    }
    return [
        fragment.name for fragment in fragments
        if not (anchored & fragment.elements)
    ]


def mutate_endpoint(endpoint: SystemEndpoint, fraction: float,
                    seed: int = 0,
                    delete_fraction: float = 0.0) -> MutationReport:
    """Update ``fraction`` of each stored fragment's rows (and delete
    ``delete_fraction`` of the rows of cascade-free fragments),
    deterministically from ``seed``.

    The endpoint must have versioning enabled; every change lands
    through :meth:`~repro.services.endpoint.SystemEndpoint.
    apply_changes`, so the version log sees it.
    """
    rng = random.Random(seed)
    report = MutationReport()
    deletable = set(_deletable_fragments(endpoint))
    for fragment in sorted(endpoint.stored_fragments(),
                           key=lambda f: f.name):
        rows = endpoint.scan(fragment).rows
        if not rows:
            continue
        picked = max(1, round(fraction * len(rows))) \
            if fraction > 0 else 0
        picked = min(picked, len(rows))
        updates: list[FragmentRow] = []
        if picked:
            for row in rng.sample(rows, picked):
                _perturb(row.data)
                updates.append(row)
        deletes: set[int] = set()
        if delete_fraction > 0 and fragment.name in deletable:
            doomed = min(
                len(rows) - picked,
                max(1, round(delete_fraction * len(rows))),
            )
            survivors = [
                row.eid for row in rows
                if all(row is not update for update in updates)
            ]
            if doomed > 0 and survivors:
                deletes = set(
                    rng.sample(survivors, min(doomed, len(survivors)))
                )
        if not updates and not deletes:
            continue
        report.version = endpoint.apply_changes(
            fragment, upserts=updates, deletes=deletes
        )
        report.updated += len(updates)
        report.deleted += len(deletes)
        report.by_fragment[fragment.name] = len(updates) + len(deletes)
    return report
