"""The Section 1.1 motivating scenario: customer sales → provisioning.

Schema ``S`` is the sales/ordering system's relational layout
(CUSTOMER, ORDER, SERVICE, LINE_FEATURE, SWITCH) expressed as a
fragmentation; schema ``T`` is the provisioning LDAP directory's layout
(CUSTOMER_T, ORDER_SERVICE_T, LINE_SWITCH_T, FEATURE_T) — the paper's
*T-fragmentation*.  Note ``Line_Feature`` is a *pruned* subtree (it
contains Line, TelNo, Feature, FeatureID but not Switch), which is what
makes the exchange of Figure 5 need both a Split and Combines.
"""

from __future__ import annotations

import random

from repro.core.fragment import Fragment
from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData, FragmentInstance, FragmentRow
from repro.schema.dtd import parse_dtd
from repro.schema.model import SchemaTree
from repro.wsdl.model import Definitions, Port, Service
from repro.xmlkit.tree import Element

#: The customer information schema agreed in the Figure 1 WSDL.
CUSTOMER_DTD = """
<!ELEMENT Customer (CustName, Order*)>
<!ELEMENT CustName (#PCDATA)>
<!ELEMENT Order (Service, Line*)>
<!ELEMENT Service (ServiceName)>
<!ELEMENT ServiceName (#PCDATA)>
<!ELEMENT Line (TelNo, Switch, Feature*)>
<!ELEMENT TelNo (#PCDATA)>
<!ELEMENT Switch (SwitchID)>
<!ELEMENT SwitchID (#PCDATA)>
<!ELEMENT Feature (FeatureID)>
<!ELEMENT FeatureID (#PCDATA)>
"""

_SERVICES = ("local", "long-distance", "international", "bundle")
_FEATURES = ("caller ID", "voicemail", "call waiting", "three-way",
             "forwarding")
_NAMES = ("Acme Corp", "Globex", "Initech", "Umbrella", "Stark",
          "Wayne Enterprises", "Tyrell", "Wonka Industries")


def customer_schema() -> SchemaTree:
    """The agreed XML Schema as a tree."""
    return parse_dtd(CUSTOMER_DTD)


def s_fragmentation(schema: SchemaTree) -> Fragmentation:
    """The sales system's fragmentation — one fragment per relation of
    schema S, including the denormalized LINE_FEATURE (Line + Feature
    without Switch)."""
    return Fragmentation(
        schema,
        [
            Fragment(schema, ["Customer", "CustName"], "Customer"),
            Fragment(schema, ["Order"], "Order"),
            Fragment(schema, ["Service", "ServiceName"], "Service"),
            Fragment(
                schema,
                ["Line", "TelNo", "Feature", "FeatureID"],
                "Line_Feature",
            ),
            Fragment(schema, ["Switch", "SwitchID"], "Switch"),
        ],
        "S-fragmentation",
    )


def t_fragmentation(schema: SchemaTree) -> Fragmentation:
    """The provisioning system's *T-fragmentation* (Section 3.1)."""
    return Fragmentation(
        schema,
        [
            Fragment(schema, ["Customer", "CustName"], "Customer"),
            Fragment(
                schema, ["Order", "Service", "ServiceName"],
                "Order_Service",
            ),
            Fragment(
                schema, ["Line", "TelNo", "Switch", "SwitchID"],
                "Line_Switch",
            ),
            Fragment(schema, ["Feature", "FeatureID"], "Feature"),
        ],
        "T-fragmentation",
    )


def customer_info_wsdl() -> Definitions:
    """The Figure 1 WSDL: CustomerInfoService with its embedded schema."""
    def element(name: str, *children: Element,
                **attrs: str) -> Element:
        node = Element("element", {"name": name, **attrs})
        node.children.extend(children)
        return node

    schema_element = Element(
        "schema",
        {
            "targetNamespace": "http://customers.xsd",
            "xmlns": "http://www.w3.org/XMLSchema",
        },
    )
    schema_element.append(
        element(
            "Customer",
            element("CustName", type="string"),
            element(
                "Order",
                element(
                    "Service",
                    element("ServiceName", type="string"),
                ),
                element(
                    "Line",
                    element("TelNo", type="string"),
                    element(
                        "Switch",
                        element("SwitchID", type="string"),
                    ),
                    element(
                        "Feature",
                        element("FeatureID", type="string"),
                        maxOccurs="unbounded",
                    ),
                    maxOccurs="unbounded",
                ),
                maxOccurs="unbounded",
            ),
        )
    )
    return Definitions(
        name="CustomerInfo",
        target_namespace="http://customers.wsdl",
        types=[schema_element],
        services=[
            Service(
                "CustomerInfoService",
                documentation="Provides customer information",
                ports=[
                    Port(
                        "CustomerInfoPort",
                        "tns:CustomerInfoBinding",
                        "http://customerinfo",
                    )
                ],
            )
        ],
    )


def generate_customer_document(*, seed: int = 0) -> ElementData:
    """One seeded customer document (the schema's root is ``Customer``,
    so a document holds one customer; see
    :func:`generate_customer_instances` for a whole result set)."""
    return generate_customer_instances(1, seed=seed)[0]


def generate_customer_instances(n_customers: int = 5, *,
                                seed: int = 0) -> list[ElementData]:
    """One document per customer (CustomerInfoService returns a set of
    documents, one per customer — Section 1.1)."""
    rng = random.Random(seed)
    next_eid = 1

    def make(name: str, text: str = "") -> ElementData:
        nonlocal next_eid
        data = ElementData(name, next_eid, {}, text)
        next_eid += 1
        return data

    documents: list[ElementData] = []
    for customer_number in range(n_customers):
        customer = make("Customer")
        customer.add_child(
            make(
                "CustName",
                f"{rng.choice(_NAMES)} #{customer_number}",
            )
        )
        for _ in range(rng.randint(1, 3)):
            order = customer.add_child(make("Order"))
            service = order.add_child(make("Service"))
            service.add_child(
                make("ServiceName", rng.choice(_SERVICES))
            )
            for _ in range(rng.randint(1, 4)):
                line = order.add_child(make("Line"))
                line.add_child(
                    make(
                        "TelNo",
                        "973-%03d-%04d" % (
                            rng.randint(0, 999), rng.randint(0, 9999),
                        ),
                    )
                )
                switch = line.add_child(make("Switch"))
                switch.add_child(
                    make("SwitchID", f"SW{rng.randint(100, 999)}")
                )
                for _ in range(rng.randint(0, 3)):
                    feature = line.add_child(make("Feature"))
                    feature.add_child(
                        make("FeatureID", rng.choice(_FEATURES))
                    )
        documents.append(customer)
    return documents


def fragment_customers(documents: list[ElementData],
                       fragmentation: Fragmentation
                       ) -> dict[str, FragmentInstance]:
    """Split customer documents into a fragmentation's instances (used
    to seed in-memory endpoints with schema-S-shaped feeds)."""
    whole = Fragment.whole(fragmentation.schema)
    rows = [FragmentRow(document, None) for document in documents]
    instance = FragmentInstance(whole, rows)
    pieces = instance.split(list(fragmentation.fragments))
    return {piece.fragment.name: piece for piece in pieces}
