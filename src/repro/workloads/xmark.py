"""The XMark workload (Figure 7) and its MF/LF fragmentations.

The paper uses a subset of the XMark auction DTD.  One adaptation is
needed (documented in DESIGN.md): XMark hangs ``item*`` under each of
the six region elements, but a schema *tree* requires unique element
declarations, so here all items live under one region (``africa``) and
the other five regions are leaves.  This preserves everything the
experiments depend on: the LF fragmentation has exactly the paper's
three fragments (the SITE spine, ITEM_..., CATEGORY_...), MF has one
fragment per element, and row/byte counts are unchanged — only the
continent distribution of items differs, which no measured quantity
observes.
"""

from __future__ import annotations

import random

from repro.core.fragmentation import Fragmentation
from repro.core.instance import ElementData
from repro.schema.dtd import parse_dtd
from repro.schema.model import SchemaTree

#: The (tree-ified) DTD of Figure 7.  Leaf elements carry text.
XMARK_DTD = """
<!-- DTD for subset of auction database (Figure 7, tree-ified) -->
<!ELEMENT site (regions, categories, catgraph, people,
                openauctions, closedauctions)>
<!ELEMENT regions (africa, asia, australia, europe,
                   namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (#PCDATA)>
<!ELEMENT australia (#PCDATA)>
<!ELEMENT europe (#PCDATA)>
<!ELEMENT namerica (#PCDATA)>
<!ELEMENT samerica (#PCDATA)>
<!ELEMENT item (location, quantity, iname, payment,
                idescription, shipping, mailbox)>
<!ATTLIST item id CDATA #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT iname (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT idescription (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT mailbox (#PCDATA)>
<!ELEMENT categories (category+)>
<!ELEMENT category (cname, cdescription)>
<!ATTLIST category id CDATA #REQUIRED>
<!ELEMENT cname (#PCDATA)>
<!ELEMENT cdescription (#PCDATA)>
<!ELEMENT catgraph (#PCDATA)>
<!ELEMENT people (#PCDATA)>
<!ELEMENT openauctions (#PCDATA)>
<!ELEMENT closedauctions (#PCDATA)>
"""

_COUNTRIES = (
    "United States", "Germany", "Japan", "Brazil", "Kenya", "France",
    "Australia", "Canada", "India", "Mexico",
)
_NOUNS = (
    "gold watch", "oak table", "rare stamp", "oil painting",
    "silver coin", "antique clock", "first edition", "porcelain vase",
    "vintage camera", "model train",
)
_PAYMENTS = ("Creditcard", "Money order", "Personal check", "Cash")
_SHIPPING = (
    "Will ship only within country", "Will ship internationally",
    "Buyer pays fixed shipping charges", "See description for charges",
)
_DESCRIPTION_WORDS = (
    "charming", "excellent", "condition", "provenance", "documented",
    "original", "restored", "authentic", "estate", "collection",
    "pristine", "signed", "numbered", "limited", "certificate",
)


def xmark_schema() -> SchemaTree:
    """Parse the Figure 7 DTD into a schema tree."""
    return parse_dtd(XMARK_DTD)


def xmark_mf_fragmentation(schema: SchemaTree | None = None
                           ) -> Fragmentation:
    """The paper's *MF*: a separate fragment for each DTD element."""
    return Fragmentation.most_fragmented(schema or xmark_schema(), "MF")


def xmark_lf_fragmentation(schema: SchemaTree | None = None
                           ) -> Fragmentation:
    """The paper's *LF*: one-to-one children inlined — exactly the
    three fragments listed in Section 5 (SITE_..., ITEM_...,
    CATEGORY_...)."""
    return Fragmentation.least_fragmented(schema or xmark_schema(), "LF")


#: Measured bytes per generated item/category (used to size documents).
_ITEM_BYTES = 330
_CATEGORY_BYTES = 95
_ITEMS_PER_CATEGORY = 8


def generate_xmark_document(target_bytes: int, *, seed: int = 0,
                            schema: SchemaTree | None = None
                            ) -> ElementData:
    """Generate an auction document of roughly ``target_bytes`` bytes.

    Items and categories are generated in the fixed ratio
    ``_ITEMS_PER_CATEGORY``; each item references a category id, like
    XMark's generator.  Documents are reproducible for a given seed.
    """
    if target_bytes < 1_000:
        raise ValueError("target_bytes must be at least 1000")
    schema = schema or xmark_schema()
    rng = random.Random(seed)
    per_group = _ITEM_BYTES * _ITEMS_PER_CATEGORY + _CATEGORY_BYTES
    n_categories = max(1, target_bytes // per_group)
    n_items = n_categories * _ITEMS_PER_CATEGORY

    next_eid = 1

    def make(name: str, text: str = "",
             attrs: dict[str, str] | None = None) -> ElementData:
        nonlocal next_eid
        data = ElementData(name, next_eid, attrs or {}, text)
        next_eid += 1
        return data

    site = make("site")
    regions = site.add_child(make("regions"))
    africa = regions.add_child(make("africa"))
    for leaf_region in ("asia", "australia", "europe", "namerica",
                        "samerica"):
        regions.add_child(
            make(leaf_region, f"{leaf_region} region summary")
        )
    categories = site.add_child(make("categories"))
    for category_number in range(int(n_categories)):
        category = categories.add_child(
            make("category", attrs={"id": f"category{category_number}"})
        )
        category.add_child(
            make("cname", f"{rng.choice(_NOUNS)} auctions")
        )
        category.add_child(
            make(
                "cdescription",
                " ".join(rng.choice(_DESCRIPTION_WORDS)
                         for _ in range(4)),
            )
        )
    site.add_child(make("catgraph", "edges omitted"))
    site.add_child(make("people", "person records omitted"))
    site.add_child(make("openauctions", "open auction records omitted"))
    site.add_child(
        make("closedauctions", "closed auction records omitted")
    )
    for item_number in range(int(n_items)):
        attrs = {"id": f"item{item_number}"}
        if rng.random() < 0.1:
            attrs["featured"] = "yes"
        item = africa.add_child(make("item", attrs=attrs))
        item.add_child(make("location", rng.choice(_COUNTRIES)))
        item.add_child(make("quantity", str(rng.randint(1, 5))))
        item.add_child(make("iname", rng.choice(_NOUNS)))
        item.add_child(make("payment", rng.choice(_PAYMENTS)))
        item.add_child(
            make(
                "idescription",
                " ".join(rng.choice(_DESCRIPTION_WORDS)
                         for _ in range(12)),
            )
        )
        item.add_child(make("shipping", rng.choice(_SHIPPING)))
        item.add_child(
            make("mailbox", f"{rng.randint(0, 9)} messages")
        )
    return site
