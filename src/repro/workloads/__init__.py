"""The paper's workloads.

* :mod:`repro.workloads.xmark` — the XMark DTD subset of Figure 7, its
  MF/LF fragmentations and a size-targeted document generator,
* :mod:`repro.workloads.customer` — the Section 1.1 customer/orders
  scenario (schema S, LDAP schema T, the Figure 1 WSDL, sample data),
* :mod:`repro.workloads.docgen` — a generic random document generator
  for arbitrary schema trees,
* :mod:`repro.workloads.sizes` — the 2.5/12.5/25 MB document ladder and
  the ``REPRO_SCALE`` environment knob.
"""

from repro.workloads.customer import (
    customer_info_wsdl,
    customer_schema,
    fragment_customers,
    generate_customer_instances,
    s_fragmentation,
    t_fragmentation,
)
from repro.workloads.docgen import generate_document
from repro.workloads.sizes import DOCUMENT_SIZES_MB, scaled_bytes
from repro.workloads.xmark import (
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
    generate_xmark_document,
)

__all__ = [
    "customer_schema",
    "customer_info_wsdl",
    "s_fragmentation",
    "t_fragmentation",
    "generate_customer_instances",
    "fragment_customers",
    "generate_document",
    "DOCUMENT_SIZES_MB",
    "scaled_bytes",
    "xmark_schema",
    "xmark_mf_fragmentation",
    "xmark_lf_fragmentation",
    "generate_xmark_document",
]
