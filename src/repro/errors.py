"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems define narrower classes here
(rather than locally) to avoid circular imports between substrates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XmlSyntaxError(ReproError):
    """Raised by the XML tokenizer/parser on malformed input.

    Carries the (1-based) ``line`` and ``column`` of the offending input
    when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DtdSyntaxError(ReproError):
    """Raised when a DTD declaration cannot be parsed."""


class SchemaError(ReproError):
    """Raised on inconsistent schema trees (unknown elements, duplicates)."""


class FragmentationError(ReproError):
    """Raised when a fragmentation violates Definition 3.4 (validity)."""


class MappingError(ReproError):
    """Raised when no mapping exists between two fragmentations."""


class ProgramError(ReproError):
    """Raised on malformed data-transfer programs (cycles, dangling writes)."""


class PlacementError(ReproError):
    """Raised when an operator placement violates one-way shipping rules."""


class OperationError(ReproError):
    """Raised when a primitive operation is applied to incompatible inputs."""


class RelationalError(ReproError):
    """Base class for relational-engine errors."""


class SqlSyntaxError(RelationalError):
    """Raised by the SQL tokenizer/parser on malformed statements."""


class TableError(RelationalError):
    """Raised on schema violations (unknown table/column, arity mismatch)."""


class DirectoryError(ReproError):
    """Raised by the LDAP-like directory store (bad DN, unknown class)."""


class WsdlError(ReproError):
    """Raised when a WSDL document (or fragmentation extension) is invalid."""


class TransportError(ReproError):
    """Raised by the simulated network transport (closed channel, overflow)."""


class MessageDropped(TransportError):
    """Raised when a message is lost in flight (fault injection)."""


class MessageCorrupted(TransportError):
    """Raised when a received message fails its integrity check."""


class MessageTimeout(TransportError):
    """Raised when a message exceeds the per-message delivery timeout."""


class RetryExhausted(TransportError):
    """Raised when a retry policy gives up on a message.

    Carries the total ``attempts`` made and the ``last_cause`` — the
    final transport failure that exhausted the budget.
    """

    def __init__(self, message: str, attempts: int,
                 last_cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_cause = last_cause


class SoapFault(ReproError):
    """Raised when a SOAP envelope is malformed or carries a fault."""


class EndpointError(ReproError):
    """Raised when a system endpoint cannot execute an assigned operation."""


class NegotiationError(ReproError):
    """Raised by the discovery agency when negotiation cannot proceed."""


class BrokerError(ReproError):
    """Raised by the exchange broker on misuse (closed broker, unknown
    endpoints, invalid session requests)."""


class BrokerSaturatedError(BrokerError):
    """Raised by the broker's admission control when a session is
    submitted beyond the pending budget (and the caller chose not to
    wait for capacity)."""


class ShardingError(ReproError):
    """Raised when fragment instances cannot be partitioned into
    shards (no shardable grain, a target fragmentation that would
    re-assemble sharded subtrees, dangling PARENT references) or when
    gathered shard outputs conflict on a key."""


class ShardFaultError(ShardingError):
    """Raised by the scatter/gather coordinator when one or more shard
    sessions failed.

    Carries ``faults`` — shard index to the error description — and the
    partial ``outcome`` (sibling shards are unaffected; their sessions
    completed and their targets are intact).
    """

    def __init__(self, message: str, faults: dict[int, str],
                 outcome: object | None = None) -> None:
        super().__init__(message)
        self.faults = faults
        self.outcome = outcome
