"""Ablation — the parallel-execution opportunity of Section 5.2.

The paper executes all program pieces sequentially and notes that the
Scan->Write series of identical-fragmentation exchanges "offers an
opportunity for parallelism... that we did not pursue here".  This
ablation pursues it: from the sequential run's per-operation timings,
it computes the makespan a 4-way parallel executor would achieve for
each scenario.  MF->MF (24 independent transfers) parallelizes best;
MF->LF (3 expressions, one huge) barely benefits — the shape the paper
predicts.
"""

import pytest

from repro.core.program.parallel import simulate_parallel_makespan
from repro.services.exchange import run_optimized_exchange

from support import SCENARIOS

_SPEEDUPS: dict[str, float] = {}


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_parallel_speedup(benchmark, scenario, size_labels, sources,
                          programs, fresh_target, channel, results):
    label = size_labels[-1]
    source_kind, target_kind = scenario.split("->")
    source = sources[(source_kind, label)]
    program, placement = programs[scenario]

    def run():
        target = fresh_target(target_kind)
        channel.reset()
        from repro.core.program.executor import ProgramExecutor

        report = ProgramExecutor(source, target, channel).run(
            program, placement
        )
        return simulate_parallel_makespan(
            program, placement, report, workers=4
        )

    estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    _SPEEDUPS[scenario] = estimate.speedup
    results.record(
        "ablation-parallel", scenario, "independent groups",
        estimate.groups,
        title="Ablation: 4-way parallel execution (Section 5.2's "
              "unpursued opportunity)",
    )
    results.record(
        "ablation-parallel", scenario, "speedup x",
        round(estimate.speedup, 2),
    )


def test_parallel_shape():
    if len(_SPEEDUPS) < len(SCENARIOS):
        pytest.skip("run the sweep first")
    # MF->MF has 24 independent pieces; it must parallelize at least as
    # well as MF->LF whose three expressions are dominated by one.
    assert _SPEEDUPS["MF->MF"] >= _SPEEDUPS["MF->LF"] - 0.05
    assert _SPEEDUPS["MF->MF"] > 1.3
