"""Ablation — the parallel-execution opportunity of Section 5.2.

The paper executes all program pieces sequentially and notes that the
Scan->Write series of identical-fragmentation exchanges "offers an
opportunity for parallelism... that we did not pursue here".  This
ablation pursues it twice over:

* from the sequential run's per-operation timings it computes the
  makespan a 4-way parallel executor *would* achieve
  (``simulate_parallel_makespan``) for each scenario — MF->MF (24
  independent transfers) parallelizes best, MF->LF (3 expressions, one
  huge) barely benefits, the shape the paper predicts;
* it then actually *runs* the Figure 9 MF->MF scenario on the
  DAG-scheduled ``ParallelProgramExecutor`` over a sleeping channel
  and checks the measured wall-clock speedup against the estimate —
  the estimator is a checkable prediction, not a fiction.
"""

import time

import pytest

from repro.core.program.executor import ProgramExecutor
from repro.core.program.parallel import simulate_parallel_makespan
from repro.core.program.parallel_executor import ParallelProgramExecutor
from repro.net.transport import NetworkProfile, SimulatedChannel
from repro.services.exchange import run_optimized_exchange

from support import SCENARIOS

_SPEEDUPS: dict[str, float] = {}


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_parallel_speedup(benchmark, scenario, size_labels, sources,
                          programs, fresh_target, channel, results):
    label = size_labels[-1]
    source_kind, target_kind = scenario.split("->")
    source = sources[(source_kind, label)]
    program, placement = programs[scenario]

    def run():
        target = fresh_target(target_kind)
        channel.reset()
        from repro.core.program.executor import ProgramExecutor

        report = ProgramExecutor(source, target, channel).run(
            program, placement
        )
        return simulate_parallel_makespan(
            program, placement, report, workers=4
        )

    estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    _SPEEDUPS[scenario] = estimate.speedup
    results.record(
        "ablation-parallel", scenario, "independent groups",
        estimate.groups,
        title="Ablation: 4-way parallel execution (Section 5.2's "
              "unpursued opportunity)",
    )
    results.record(
        "ablation-parallel", scenario, "speedup x",
        round(estimate.speedup, 2),
    )


def test_parallel_shape():
    if len(_SPEEDUPS) < len(SCENARIOS):
        pytest.skip("run the sweep first")
    # MF->MF has 24 independent pieces; it must parallelize at least as
    # well as MF->LF whose three expressions are dominated by one.
    assert _SPEEDUPS["MF->MF"] >= _SPEEDUPS["MF->LF"] - 0.05
    assert _SPEEDUPS["MF->MF"] > 1.3


def test_measured_parallel_speedup(benchmark, size_labels, sources,
                                   programs, fresh_target, results):
    """Run the Figure 9 MF->MF scenario for real on the parallel
    executor and hold the simulator to its prediction.

    The channel sleeps its simulated transfer time, so the wall clock
    feels communication; the parallel executor must beat the
    sequential one by >= 1.3x while writing byte-identical fragments,
    and land within 2x of the ``simulate_parallel_makespan`` estimate.
    """
    label = size_labels[-1]
    source = sources[("MF", label)]
    program, placement = programs["MF->MF"]
    # A slow enough link that communication matters, as in the paper's
    # Internet setup (Table 3), but scaled to the test document sizes.
    profile = NetworkProfile(
        "bench-internet", bandwidth_bytes_per_second=400_000.0,
        latency_seconds=0.002,
    )

    def run_both():
        sequential_target = fresh_target("MF")
        channel = SimulatedChannel(profile, realtime=True)
        started = time.perf_counter()
        sequential_report = ProgramExecutor(
            source, sequential_target, channel
        ).run(program, placement)
        sequential_wall = time.perf_counter() - started

        parallel_target = fresh_target("MF")
        channel = SimulatedChannel(profile, realtime=True)
        parallel_report = ParallelProgramExecutor(
            source, parallel_target, channel, workers=4
        ).run(program, placement)
        return (sequential_report, sequential_wall,
                parallel_report, sequential_target, parallel_target)

    (sequential_report, sequential_wall, parallel_report,
     sequential_target, parallel_target) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    # Byte-identical target fragments, whatever the schedule did.
    for fragment in sequential_target.fragmentation:
        table = sequential_target.mapper.table_name(fragment)
        assert parallel_target.db.table(table).rows == \
            sequential_target.db.table(table).rows, fragment.name

    measured = sequential_wall / parallel_report.wall_seconds
    estimate = simulate_parallel_makespan(
        program, placement, sequential_report, workers=4
    )
    results.record(
        "ablation-parallel-measured", "MF->MF", "sequential s",
        round(sequential_wall, 3),
        title="Ablation: measured 4-way parallel execution vs the "
              "makespan estimate (Figure 9 MF->MF, sleeping channel)",
    )
    results.record("ablation-parallel-measured", "MF->MF",
                   "parallel s", round(parallel_report.wall_seconds, 3))
    results.record("ablation-parallel-measured", "MF->MF",
                   "measured speedup x", round(measured, 2))
    results.record("ablation-parallel-measured", "MF->MF",
                   "simulated speedup x", round(estimate.speedup, 2))
    results.record(
        "ablation-parallel-measured", "MF->MF", "critical path s",
        round(parallel_report.critical_path_seconds, 3),
    )

    assert measured >= 1.3, (measured, estimate.speedup)
    # The estimator must be a checkable prediction: within 2x of what
    # the real executor delivers.
    ratio = max(measured, estimate.speedup) \
        / min(measured, estimate.speedup)
    assert ratio <= 2.0, (measured, estimate.speedup)
