"""Table 2 — Times for Publish (Step 1) & Map/shred (Step 4).

Each cell is ``publish + shred`` seconds: publishing the whole document
at the source (optimized per-fragment queries, merge & tag) plus
parsing-and-shredding it at the target.  The paper's finding: shredding
is significant — when the source is LF it shadows publishing — and in
most cases running the whole optimized exchange (Table 1) compares
favorably to *publishing alone*.
"""

import pytest

from repro.relational.publisher import publish_document
from repro.relational.shredder import shred_document
from repro.reporting.timers import Timer

from support import SCENARIOS


@pytest.mark.parametrize("label_index", [0, 1, 2])
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_table2_cell(benchmark, scenario, label_index, size_labels,
                     sources, fresh_target, results):
    label = size_labels[label_index]
    source_kind, target_kind = scenario.split("->")
    source = sources[(source_kind, label)]

    def run_publish_and_shred():
        # Best of three repetitions per component: single-shot wall
        # clocks are noisy at scaled-down sizes.
        publish_seconds = []
        shred_seconds = []
        for _ in range(3):
            with Timer() as publish_timer:
                report = publish_document(source.db, source.mapper)
            publish_seconds.append(publish_timer.seconds)
            target = fresh_target(target_kind)
            with Timer() as shred_timer:
                shred_document(report.document, target.mapper)
            shred_seconds.append(shred_timer.seconds)
        return min(publish_seconds), min(shred_seconds)

    publish_seconds, shred_seconds = benchmark.pedantic(
        run_publish_and_shred, rounds=1, iterations=1
    )
    results.record(
        "table2", scenario, label,
        f"{publish_seconds:.3f}+{shred_seconds:.3f}",
        title="Table 2: times (secs) for Publish (first value / Step 1)"
              " & Map (second value / Step 4)",
    )
    results.record(
        "table2-publish", scenario, label, publish_seconds,
        title="Table 2a: publish component only (secs)",
    )
    results.record(
        "table2-shred", scenario, label, shred_seconds,
        title="Table 2b: shred component only (secs)",
    )


def test_table2_shape(results, size_labels):
    """Shredding must be a significant share of publish&map, and the
    publish component must depend only on the source fragmentation."""
    publish = results.tables.get("table2-publish")
    shred = results.tables.get("table2-shred")
    if not publish or len(publish) < 12:
        pytest.skip("cells incomplete (run the full module)")
    largest = size_labels[-1]
    # Publishing from LF is not more expensive than from MF (fewer
    # feeds to merge).  The paper sees a 2.8x gap because MySQL
    # publishing is join-dominated; our merge&tag is serialization-
    # dominated, so the gap narrows to noise — allow 15% tolerance
    # (documented in EXPERIMENTS.md).
    assert publish[("LF->MF", largest)] <= \
        publish[("MF->MF", largest)] * 1.15
    # Shredding is significant: at least 25% of the publish+shred total
    # in every scenario at the largest size.
    for scenario in ("MF->MF", "MF->LF", "LF->MF", "LF->LF"):
        total = publish[(scenario, largest)] + shred[(scenario, largest)]
        assert shred[(scenario, largest)] / total > 0.25
