"""Ablation — calibrating the cost model to the live substrate.

Section 4.1 assumes reliable computation-cost estimates "can be
obtained from the individual systems".  This ablation obtains them:
fit per-kind seconds-per-work-unit scales from one executed program
(MF->LF), then *predict* the source-processing time of a different
program (LF->MF) and compare against its measurement.  A model that
transfers across programs is what makes the optimizer's decisions
meaningful in wall-clock terms.
"""

import pytest

from repro.core.cost.calibrate import calibrate
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.ops.base import Location
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor

_RESULT: dict[str, float] = {}


def test_calibration_transfers_across_programs(
        benchmark, size_labels, sources, fragmentations, fresh_target,
        results, documents):
    label = size_labels[-1]
    statistics = StatisticsCatalog.from_document(
        fragmentations["MF"].schema, documents[label]
    )

    def run():
        # Fit on MF->LF ...
        fit_source = sources[("MF", label)]
        fit_program = build_transfer_program(
            derive_mapping(fragmentations["MF"], fragmentations["LF"])
        )
        fit_placement = source_heavy_placement(fit_program)
        fit_report = ProgramExecutor(
            fit_source, fresh_target("LF")
        ).run(fit_program, fit_placement)
        calibration = calibrate(fit_program, fit_report, statistics)

        # ... predict LF->MF source processing, then measure it.
        test_source = sources[("LF", label)]
        test_program = build_transfer_program(
            derive_mapping(fragmentations["LF"], fragmentations["MF"])
        )
        test_placement = source_heavy_placement(test_program)
        predicted = sum(
            calibration.predict(node)
            for node in test_program.nodes
            if test_placement[node.op_id] is Location.SOURCE
        )
        report = ProgramExecutor(
            test_source, fresh_target("MF")
        ).run(test_program, test_placement)
        measured = report.source_seconds
        return predicted, measured

    predicted, measured = benchmark.pedantic(run, rounds=1,
                                             iterations=1)
    _RESULT["ratio"] = predicted / max(measured, 1e-9)
    results.record(
        "ablation-calibration", "LF->MF source processing",
        "predicted secs", round(predicted, 4),
        title="Ablation: calibrated model predicting a different "
              "program's time",
    )
    results.record(
        "ablation-calibration", "LF->MF source processing",
        "measured secs", round(measured, 4),
    )
    results.record(
        "ablation-calibration", "LF->MF source processing",
        "predicted/measured", round(_RESULT["ratio"], 3),
    )


def test_calibration_shape():
    if "ratio" not in _RESULT:
        pytest.skip("run the measuring bench first")
    # Cross-program prediction within a factor of 5 (the programs share
    # only the scan/write kinds' scales; split is extrapolated).
    assert 0.2 <= _RESULT["ratio"] <= 5.0, _RESULT["ratio"]
