"""Ablation — the communication weight ``w_com`` (formula 1).

The paper balances computation and communication with weights.  This
ablation sweeps ``w_com`` on the LF -> MF exchange against a *slow*
target: with communication free the optimizer splits at the source
(computation parity, shipping ignored); as shipping gets expensive the
split migrates to the target, because the three LF feeds are smaller on
the wire than 24 MF feeds.  The crossover demonstrates that the weights
actually steer distributed processing.
"""

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, CostWeights, MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.ops.base import Location
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.program.builder import build_transfer_program

_WEIGHTS = (0.0, 0.5, 5.0, 50.0)
_PLACEMENTS: dict[float, str] = {}


@pytest.mark.parametrize("w_com", _WEIGHTS)
def test_comm_weight_sweep(benchmark, w_com, fragmentations, results):
    schema = fragmentations["MF"].schema
    stats = StatisticsCatalog.synthetic(schema, fanout=5.0)
    model = CostModel(
        stats,
        source=MachineProfile("source"),
        target=MachineProfile("target", speed=0.25),  # slow client
        weights=CostWeights(communication=w_com),
        bandwidth=1.0,
    )
    program = build_transfer_program(
        derive_mapping(fragmentations["LF"], fragmentations["MF"])
    )

    placement, cost = benchmark.pedantic(
        lambda: cost_based_optim(program, model), rounds=1, iterations=1
    )
    split_locations = {
        placement[node.op_id].value
        for node in program.nodes
        if node.kind == "split"
    }
    location = "/".join(sorted(split_locations))
    _PLACEMENTS[w_com] = location
    results.record(
        "ablation-comm-weight", f"w_com={w_com}", "split location",
        location,
        title="Ablation: communication weight steers Split placement "
              "(LF->MF, slow target)",
    )
    results.record(
        "ablation-comm-weight", f"w_com={w_com}", "cost",
        round(cost, 1),
    )


def test_comm_weight_shape():
    if len(_PLACEMENTS) < len(_WEIGHTS):
        pytest.skip("run the sweep first")
    # Free communication: the slow target repels work -> splits at S.
    assert _PLACEMENTS[0.0] == "S"
    # Expensive communication: smaller LF feeds win -> splits at T.
    assert _PLACEMENTS[50.0] == "T"
