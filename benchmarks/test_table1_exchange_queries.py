"""Table 1 — Times to execute queries (Step 1) in optimized DE.

The paper's Table 1 reports, for each scenario (MF->MF, MF->LF, LF->MF,
LF->LF) and document size (2.5/12.5/25 MB), the time to execute the
program parts assigned to the source.  Under the Section 5.3 placement
that is everything except the Writes, so the cell equals the DE
``source_processing`` step.

Shape to reproduce: LF sources are faster than MF sources (fewer
combines), LF->LF is the cheapest row, and times grow roughly linearly
with document size.
"""

import pytest

from repro.services.exchange import run_optimized_exchange

from support import SCENARIOS


@pytest.mark.parametrize("label_index", [0, 1, 2])
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_table1_cell(benchmark, scenario, label_index, size_labels,
                     sources, programs, fresh_target, channel, results):
    label = size_labels[label_index]
    source_kind, target_kind = scenario.split("->")
    source = sources[(source_kind, label)]
    program, placement = programs[scenario]

    def run_step1():
        target = fresh_target(target_kind)
        outcome = run_optimized_exchange(
            program, placement, source, target, channel, scenario
        )
        return outcome.steps["source_processing"]

    seconds = benchmark.pedantic(run_step1, rounds=1, iterations=1)
    results.record(
        "table1", scenario, label, seconds,
        title="Table 1: times (secs) to execute queries (Step 1) in "
              "optimized Data Exchange",
    )


def test_table1_shape(results, size_labels):
    """After all cells ran: LF -> LF must be the cheapest source work
    and MF -> LF the most expensive (matching the paper's ordering)."""
    cells = results.tables.get("table1")
    if not cells or len(cells) < 12:
        pytest.skip("cells incomplete (run the full module)")
    largest = size_labels[-1]
    assert cells[("LF->LF", largest)] <= cells[("MF->LF", largest)]
    assert cells[("LF->MF", largest)] <= cells[("MF->MF", largest)] * 2
    # Growth with size: the 25MB cell dominates the 2.5MB cell.
    for scenario in SCENARIOS:
        assert cells[(scenario, largest)] > cells[
            (scenario, size_labels[0])
        ]
