"""Figure 11 — Simulated DE vs publishing with a 10x faster target.

Same setup as Figure 10 but the target system is ten times faster than
the source: the distributed-processing algorithm moves the combines to
the fast client and the saving grows to about 85%.
"""

import random

import pytest

from repro.core.cost.model import MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.optimizer.search import optimal_exchange
from repro.schema.generator import balanced_schema
from repro.sim.random_fragmentation import random_fragmentation
from repro.sim.simulator import ExchangeSimulator

from support import N_TRIALS, ORDER_LIMIT

_STATE: dict[str, float] = {}


def test_figure11_fast_target(benchmark, results):
    schema = balanced_schema(3, 4, seed=5)
    simulator = ExchangeSimulator(schema)
    rng = random.Random(11)
    source_machine = MachineProfile("source")
    fast_target = MachineProfile("target", speed=10.0)

    def run_trials():
        measurements = []
        fragment_pairs = []
        for _ in range(N_TRIALS):
            source = random_fragmentation(
                schema, n_fragments=11, rng=rng, name="S"
            )
            target = random_fragmentation(
                schema, n_fragments=11, rng=rng, name="T"
            )
            fragment_pairs.append((source, target))
            measurements.append(
                simulator.exchange_costs(
                    source, target, source_machine, fast_target,
                    order_limit=ORDER_LIMIT,
                )
            )
        return measurements, fragment_pairs

    measurements, fragment_pairs = benchmark.pedantic(
        run_trials, rounds=1, iterations=1
    )
    reduction = sum(m.reduction_percent for m in measurements) \
        / len(measurements)
    _STATE["reduction"] = reduction

    title = ("Figure 11: estimated cost, optimized DE vs publishing, "
             "10x faster target (paper: ~85% reduction)")
    results.record(
        "figure11", "Data Exchange", "computation",
        sum(m.exchange.computation for m in measurements)
        / len(measurements),
        title=title,
    )
    results.record(
        "figure11", "Data Exchange", "communication",
        sum(m.exchange.communication for m in measurements)
        / len(measurements),
    )
    results.record(
        "figure11", "Publish", "computation",
        sum(m.publish.computation for m in measurements)
        / len(measurements),
    )
    results.record(
        "figure11", "Publish", "communication",
        sum(m.publish.communication for m in measurements)
        / len(measurements),
    )
    results.note(
        "figure11",
        f"average reduction over {len(measurements)} trials: "
        f"{reduction:.1f}%",
    )

    # The paper's narrative: the optimizer "takes advantage of the very
    # fast client and places all combines there".  Verify on one pair.
    source, target = fragment_pairs[0]
    model = simulator.model(source_machine, fast_target)
    best = optimal_exchange(
        derive_mapping(source, target), model,
        order_limit=ORDER_LIMIT,
    )
    from repro.core.ops.base import Location
    combine_locations = {
        best.placement[node.op_id]
        for node in best.program.nodes
        if node.kind == "combine"
    }
    _STATE["all_at_target"] = float(
        combine_locations <= {Location.TARGET}
    )


def test_figure11_shape():
    if "reduction" not in _STATE:
        pytest.skip("run the measuring bench first")
    assert _STATE["reduction"] >= 70.0
    assert _STATE["all_at_target"] == 1.0
