"""Ablation — sorted feeds vs tagged SOAP XML on the wire.

The paper observes that shipping fragments "in the form of sorted
feeds" changes communication costs (Section 4.1) and Table 3 depends on
it.  This ablation runs the same MF -> LF exchange twice — once with the
tabular feed accounting, once actually SOAP-encoding every fragment —
and compares bytes on the wire against the published document size.
"""

import pytest

from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.services.exchange import run_optimized_exchange

_BYTES: dict[str, int] = {}


@pytest.mark.parametrize("wire", ["feed", "soap-xml"])
def test_wire_format(benchmark, wire, size_labels, sources, programs,
                     fresh_target, results):
    label = size_labels[-1]
    source = sources[("MF", label)]
    program, placement = programs["MF->LF"]
    channel = SimulatedChannel(wire_format=(wire == "soap-xml"))

    def run():
        target = fresh_target("LF")
        return run_optimized_exchange(
            program, placement, source, target, channel, "MF->LF"
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _BYTES[wire] = outcome.comm_bytes
    results.record(
        "ablation-wire", wire, "bytes", outcome.comm_bytes,
        title="Ablation: wire format (MF->LF, largest document)",
    )
    results.record(
        "ablation-wire", wire, "comm secs",
        outcome.steps["communication"],
    )
    if wire == "feed":
        document_bytes = publish_document(
            source.db, source.mapper
        ).bytes
        results.record(
            "ablation-wire", "published document", "bytes",
            document_bytes,
        )
        _BYTES["document"] = document_bytes


def test_wire_format_shape():
    if "feed" not in _BYTES or "soap-xml" not in _BYTES:
        pytest.skip("run both wire formats first")
    # Feeds beat the tagged document; SOAP-tagged fragments do not.
    assert _BYTES["feed"] < _BYTES["document"]
    assert _BYTES["soap-xml"] > _BYTES["feed"]
