"""Table 5 — Greedy and worst-case cost ratios over the optimal.

The paper's setup: DTDs of height 2 with fan-out 5 (31 nodes), ten
random source/target fragmentations per configuration, relative
source/target speeds 5/1, 2/1, 1/1, 1/2 and 1/5, fast interconnect.

Shapes to reproduce:

* the optimization window (worst/optimal) is widest at the extreme
  speed ratios and nearly closed at 1/1 (paper: 1.94 / 1.08 / 1.87);
* greedy is practically optimal everywhere (paper: 1.002–1.013);
* greedy runs in milliseconds while the exhaustive search is orders of
  magnitude slower (paper: ms vs 80.9 s).
"""

import random

import pytest

from repro.core.cost.model import MachineProfile
from repro.schema.generator import balanced_schema
from repro.sim.simulator import ExchangeSimulator

from support import N_TRIALS, ORDER_LIMIT

_RATIOS = (("5/1", 5.0, 1.0), ("2/1", 2.0, 1.0), ("1/1", 1.0, 1.0),
           ("1/2", 1.0, 2.0), ("1/5", 1.0, 5.0))

_WINDOWS: dict[str, float] = {}
_GREEDY: dict[str, float] = {}
_TIMES: dict[str, tuple[float, float]] = {}


@pytest.mark.parametrize(
    "ratio,source_speed,target_speed", _RATIOS,
    ids=[ratio for ratio, _, _ in _RATIOS],
)
def test_table5_row(benchmark, ratio, source_speed, target_speed,
                    results):
    schema = balanced_schema(2, 5, seed=3)  # 31 nodes, as in the paper
    simulator = ExchangeSimulator(schema)
    source = MachineProfile("source", speed=source_speed)
    target = MachineProfile("target", speed=target_speed)

    def run_trials():
        rng = random.Random(42)
        return [
            simulator.greedy_quality_trial(
                n_fragments=11, source=source, target=target,
                rng=rng, order_limit=ORDER_LIMIT,
            )
            for _ in range(N_TRIALS)
        ]

    trials = benchmark.pedantic(run_trials, rounds=1, iterations=1)
    worst_over_optimal = sum(
        trial.worst_over_optimal for trial in trials
    ) / len(trials)
    greedy_over_optimal = sum(
        trial.greedy_over_optimal for trial in trials
    ) / len(trials)
    optimal_seconds = sum(
        trial.optimal_seconds for trial in trials
    ) / len(trials)
    greedy_seconds = sum(
        trial.greedy_seconds for trial in trials
    ) / len(trials)

    _WINDOWS[ratio] = worst_over_optimal
    _GREEDY[ratio] = greedy_over_optimal
    _TIMES[ratio] = (optimal_seconds, greedy_seconds)

    title = ("Table 5: ratios of cost of greedy and worst-case "
             "programs over the cost of the optimal one")
    results.record("table5", ratio, "Worst/Optimal",
                   round(worst_over_optimal, 4), title=title)
    results.record("table5", ratio, "Greedy/Optimal",
                   round(greedy_over_optimal, 4))
    results.record("table5", ratio, "optimal secs",
                   round(optimal_seconds, 4))
    results.record("table5", ratio, "greedy secs",
                   round(greedy_seconds, 5))


def test_table5_shape():
    if len(_WINDOWS) < len(_RATIOS):
        pytest.skip("cells incomplete (run the full module)")
    # Window is widest at the speed extremes, narrowest at 1/1.
    assert _WINDOWS["5/1"] > _WINDOWS["1/1"]
    assert _WINDOWS["1/5"] > _WINDOWS["1/1"]
    # Greedy is within a few percent of optimal everywhere.
    for ratio, value in _GREEDY.items():
        assert 1.0 - 1e-9 <= value < 1.15, (ratio, value)
    # Greedy is much faster than the exhaustive search.
    for ratio, (optimal_seconds, greedy_seconds) in _TIMES.items():
        assert greedy_seconds < optimal_seconds / 5.0, ratio
