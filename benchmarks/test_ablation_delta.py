"""Ablation — incremental delta exchange vs full re-exchange.

After one cold full exchange, a fraction ``r`` of the source rows is
mutated in place and the target re-synchronized two ways: a full
re-exchange (re-ships everything) and a delta run (ships only the
changed-row closure, merging by eid).  The sweep over change rates
shows communication scaling with ``r`` rather than with the document —
the acceptance bound from the PR issue is delta comm <= 0.3x the full
run's at ``r = 10%``, with the merged target byte-identical to the
full re-exchange on every dataplane.

The LF->MF direction is the honest one for the bound: LF's coarse rows
are their own contribution islands, so the closure stays row-sized.
(Mutating a fine-grained MF source's spine row legitimately re-ships
the whole subtree under it — that amplification is recorded in the
sweep, not asserted against.)

The measured ablation is written to ``BENCH_delta.json`` at the repo
root (committed: the perf trajectory across PRs).
"""

import json
import pathlib
import time

import pytest

from repro.core.delta import endpoint_digest
from repro.core.cost.model import MachineProfile
from repro.core.program.journal import ExchangeJournal
from repro.net.transport import SimulatedChannel
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange
from repro.sim.simulator import ExchangeSimulator
from repro.workloads.mutate import mutate_endpoint

_SCENARIO = "LF->MF"
_CHANGE_RATES = (0.01, 0.05, 0.10, 0.30)
_COMM_CEILING_AT_10PCT = 0.3
_DATAPLANES = {
    "materialized": {},
    "parallel": {"parallel_workers": 3},
    "streaming": {"batch_rows": 64},
    "columnar": {"batch_rows": 64, "columnar": True},
}
_SWEEP: dict[float, dict[str, object]] = {}
_PLANES: dict[str, dict[str, object]] = {}


def _sync_pair(fragmentations, documents, size, knobs, rate, seed):
    """One full exchange, a mutation at ``rate``, a delta re-sync and
    a fresh full reference — returns the outcomes and digests."""
    source_frag = fragmentations["LF"]
    target_frag = fragmentations["MF"]
    source = RelationalEndpoint(f"delta-src-{seed}", source_frag)
    source.load_document(documents[size])
    source.enable_versioning()
    from repro.core.mapping import derive_mapping
    from repro.core.optimizer.placement import source_heavy_placement
    from repro.core.program.builder import build_transfer_program

    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    placement = source_heavy_placement(program)
    journal = ExchangeJournal()
    target = RelationalEndpoint(f"delta-tgt-{seed}", target_frag)
    full = run_optimized_exchange(
        program, placement, source, target, SimulatedChannel(),
        _SCENARIO, journal=journal, **knobs,
    )
    mutate_endpoint(
        source, rate, seed=seed, delete_fraction=rate / 5.0
    )
    started = time.perf_counter()
    delta = run_optimized_exchange(
        program, placement, source, target, SimulatedChannel(),
        _SCENARIO, journal=journal, delta=True, **knobs,
    )
    delta_wall = time.perf_counter() - started
    reference = RelationalEndpoint(f"delta-ref-{seed}", target_frag)
    run_optimized_exchange(
        program, placement, source, reference, SimulatedChannel(),
        _SCENARIO, **knobs,
    )
    fragments = list(target_frag)
    identical = endpoint_digest(target, fragments) \
        == endpoint_digest(reference, fragments)
    return full, delta, delta_wall, identical


@pytest.mark.parametrize("rate", _CHANGE_RATES)
def test_change_rate_sweep(rate, fragmentations, documents,
                           size_labels, results):
    size = size_labels[0]
    full, delta, delta_wall, identical = _sync_pair(
        fragmentations, documents, size, {}, rate,
        seed=int(rate * 1000),
    )
    assert identical, f"delta diverged at change rate {rate}"
    ratio = delta.comm_bytes / full.comm_bytes
    _SWEEP[rate] = {
        "full_comm_bytes": full.comm_bytes,
        "delta_comm_bytes": delta.comm_bytes,
        "comm_ratio": round(ratio, 4),
        "changed_rows": delta.delta_changed_rows,
        "shipped_rows": delta.delta_shipped_rows,
        "deleted_rows": delta.delta_deleted_rows,
        "total_rows": delta.delta_total_rows,
        "delta_wall_seconds": round(delta_wall, 4),
    }
    results.record(
        "ablation-delta", f"r={rate:g}", "comm ratio",
        f"{ratio:.3f}x",
        title="Ablation: delta re-exchange vs full (LF->MF, "
              "2.5MB ladder entry, comm bytes shipped)",
    )
    results.record(
        "ablation-delta", f"r={rate:g}", "shipped rows",
        f"{delta.delta_shipped_rows}/{delta.delta_total_rows}",
    )


@pytest.mark.parametrize("plane", _DATAPLANES)
def test_dataplane_byte_identity(plane, fragmentations, documents,
                                 size_labels, results):
    size = size_labels[0]
    full, delta, _, identical = _sync_pair(
        fragmentations, documents, size, _DATAPLANES[plane], 0.10,
        seed=100,
    )
    assert identical, f"{plane} dataplane diverged"
    ratio = delta.comm_bytes / full.comm_bytes
    _PLANES[plane] = {
        "comm_ratio": round(ratio, 4),
        "identical": True,
    }
    results.record(
        "ablation-delta", f"plane={plane}", "comm ratio",
        f"{ratio:.3f}x",
    )


def test_delta_bound_and_trajectory_file(fragmentations, results):
    if len(_SWEEP) < len(_CHANGE_RATES) \
            or len(_PLANES) < len(_DATAPLANES):
        pytest.skip("run the sweep first")

    # Communication grows with the change rate...
    ratios = [_SWEEP[rate]["comm_ratio"] for rate in _CHANGE_RATES]
    assert ratios == sorted(ratios)
    # ...and the acceptance bound holds at r = 10%.
    at_ten = _SWEEP[0.10]["comm_ratio"]
    assert at_ten <= _COMM_CEILING_AT_10PCT, at_ten

    # The simulator's analytic prediction for the same sweep.
    simulator = ExchangeSimulator(fragmentations["LF"].schema)
    predicted = {
        f"{estimate.change_rate:g}": round(estimate.relative_cost, 4)
        for estimate in simulator.delta_exchange_costs(
            fragmentations["LF"], fragmentations["MF"],
            MachineProfile("s"), MachineProfile("t"),
            list(_CHANGE_RATES), order_limit=40,
        )
    }

    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_delta.json"
    payload = {
        "experiment": "delta-ablation",
        "scenario": _SCENARIO,
        "document": "2.5MB ladder entry x REPRO_SCALE",
        "comm_ceiling_at_10pct": _COMM_CEILING_AT_10PCT,
        "comm_ratio_at_10pct": at_ten,
        "sweep": {f"{rate:g}": _SWEEP[rate]
                  for rate in _CHANGE_RATES},
        "dataplanes": _PLANES,
        "predicted_relative_cost": predicted,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    results.note(
        "ablation-delta",
        f"delta/full comm at r=10%: {at_ten:.3f}x "
        f"(ceiling {_COMM_CEILING_AT_10PCT}); "
        f"trajectory written to {out.name}",
    )
