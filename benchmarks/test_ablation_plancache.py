"""Ablation — negotiated-plan cache: cold vs warm repeated exchanges.

Runs the Figure 9 MF->LF exchange ``N_REPEATS`` times through the
discovery agency, once renegotiating from scratch every time (cold) and
once against a :class:`~repro.services.broker.PlanCache` (warm: the
first exchange pays the optimizer, every later negotiation is a cache
hit that deserializes the stored plan).  The per-exchange latency —
negotiation plus the exchange itself — is what a requester in a
multi-session deployment observes.

The measured trajectory is written to ``BENCH_plancache.json`` at the
repo root, alongside the simulator's predicted amortization for the
same pair (:meth:`~repro.sim.simulator.ExchangeSimulator.
repeated_exchange_costs`).
"""

import json
import pathlib
import time

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.net.transport import SimulatedChannel
from repro.obs.metrics import MetricsRegistry
from repro.services.agency import DiscoveryAgency
from repro.services.broker import PlanCache
from repro.services.exchange import run_optimized_exchange
from repro.sim.simulator import ExchangeSimulator

from support import ORDER_LIMIT

_N_REPEATS = 4
_SCENARIO = "MF->LF"
_RESULTS: dict[str, dict] = {}


def _repeated_exchanges(schema, source, fragmentations, fresh_target,
                        plan_cache):
    """Per-exchange latencies of ``_N_REPEATS`` identical exchanges."""
    agency = DiscoveryAgency(schema)
    agency.register("src", fragmentations["MF"], source)
    agency.register("tgt", fragmentations["LF"])
    model = CostModel(StatisticsCatalog.synthetic(schema))
    metrics = MetricsRegistry()
    latencies = []
    cached_flags = []
    for _ in range(_N_REPEATS):
        started = time.perf_counter()
        plan = agency.negotiate(
            "src", "tgt", optimizer="optimal", probe=model,
            order_limit=ORDER_LIMIT, plan_cache=plan_cache,
            metrics=metrics,
        )
        target = fresh_target("LF")
        outcome = run_optimized_exchange(
            plan.annotate(), plan.placement, source, target,
            SimulatedChannel(), _SCENARIO,
        )
        assert outcome.rows_written > 0
        latencies.append(time.perf_counter() - started)
        cached_flags.append(plan.cached)
    return latencies, cached_flags, metrics


@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_plancache_repeats(benchmark, mode, schema, sources,
                           fragmentations, size_labels, fresh_target,
                           results):
    source = sources[("MF", size_labels[-1])]
    plan_cache = PlanCache() if mode == "warm" else None

    def run():
        return _repeated_exchanges(
            schema, source, fragmentations, fresh_target, plan_cache
        )

    latencies, cached_flags, metrics = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    optimizer_runs = int(metrics.counter("optimizer.runs").value)
    if mode == "warm":
        # The acceptance check: only the first exchange optimized.
        assert optimizer_runs == 1
        assert cached_flags == [False] + [True] * (_N_REPEATS - 1)
    else:
        assert optimizer_runs == _N_REPEATS
        assert not any(cached_flags)
    _RESULTS[mode] = {
        "per_exchange_seconds": [round(s, 4) for s in latencies],
        "total_seconds": round(sum(latencies), 4),
        "first_exchange_seconds": round(latencies[0], 4),
        "later_exchanges_mean_seconds": round(
            sum(latencies[1:]) / (_N_REPEATS - 1), 4
        ),
        "optimizer_runs": optimizer_runs,
    }
    results.record(
        "ablation-plancache", mode, "total s",
        round(sum(latencies), 3),
        title=f"Ablation: plan cache on {_N_REPEATS} repeated "
              f"{_SCENARIO} exchanges (optimal optimizer, "
              f"order limit {ORDER_LIMIT})",
    )
    results.record("ablation-plancache", mode, "exchange 1 s",
                   round(latencies[0], 3))
    results.record(
        "ablation-plancache", mode, "later mean s",
        round(sum(latencies[1:]) / (_N_REPEATS - 1), 3),
    )
    results.record("ablation-plancache", mode, "optimizer runs",
                   optimizer_runs)


def test_plancache_shape_and_trajectory_file(schema, fragmentations,
                                             results):
    if len(_RESULTS) < 2:
        pytest.skip("run both modes first")
    cold = _RESULTS["cold"]
    warm = _RESULTS["warm"]
    # The acceptance bounds: a warm cache pays the optimizer once, so
    # the repeated stream is strictly cheaper than cold renegotiation,
    # exchange by exchange past the first.
    assert warm["total_seconds"] < cold["total_seconds"]
    assert warm["later_exchanges_mean_seconds"] < \
        cold["later_exchanges_mean_seconds"]
    assert warm["optimizer_runs"] == 1
    assert cold["optimizer_runs"] == _N_REPEATS

    predicted = ExchangeSimulator(schema).repeated_exchange_costs(
        fragmentations["MF"], fragmentations["LF"],
        MachineProfile("s"), MachineProfile("t"),
        n_exchanges=_N_REPEATS, order_limit=ORDER_LIMIT,
    )
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_plancache.json"
    payload = {
        "experiment": "plancache-ablation",
        "scenario": _SCENARIO,
        "document": "25MB ladder entry x REPRO_SCALE",
        "n_exchanges": _N_REPEATS,
        "optimizer": "optimal",
        "order_limit": ORDER_LIMIT,
        "measured": _RESULTS,
        "measured_speedup": round(
            cold["total_seconds"] / warm["total_seconds"], 3
        ),
        "simulated": {
            "per_exchange_cost": round(
                predicted.per_exchange_cost, 4
            ),
            "optimizer_seconds": round(
                predicted.optimizer_seconds, 4
            ),
            "cold_total": round(predicted.cold_total, 4),
            "warm_total": round(predicted.warm_total, 4),
            "speedup": round(predicted.speedup, 3),
        },
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    results.note(
        "ablation-plancache",
        f"trajectory written to {out.name} "
        f"(measured speedup "
        f"{cold['total_seconds'] / warm['total_seconds']:.2f}x)",
    )
