"""Table 3 — Communication times.

The paper's Table 3 has three rows: optimized DE with an MF target,
optimized DE with an LF target, and publish&map — under the Section 5.3
placement the DE traffic depends only on the *target* fragmentation
(all combines run at the source, so target-shaped feeds cross the
network).

Shape to reproduce: DE(target LF) < DE(target MF) < publish&map — feeds
carry keys and values but no tags, and LF feeds have fewer rows (fewer
keys) than MF feeds.
"""

import pytest

from repro.services.exchange import (
    run_optimized_exchange,
    run_publish_and_map,
)

_ROWS = (
    ("DE (target MF)", "MF->MF"),
    ("DE (target LF)", "MF->LF"),
    ("publish&map", None),
)


@pytest.mark.parametrize("label_index", [0, 1, 2])
@pytest.mark.parametrize("row_label,scenario", _ROWS,
                         ids=["target-mf", "target-lf", "pm"])
def test_table3_cell(benchmark, row_label, scenario, label_index,
                     size_labels, sources, programs, fresh_target,
                     channel, results):
    label = size_labels[label_index]

    if scenario is None:
        source = sources[("MF", label)]

        def run():
            target = fresh_target("LF")
            outcome = run_publish_and_map(
                source, target, channel, "pm"
            )
            return outcome.steps["communication"], outcome.comm_bytes
    else:
        source_kind, target_kind = scenario.split("->")
        source = sources[(source_kind, label)]
        program, placement = programs[scenario]

        def run():
            target = fresh_target(target_kind)
            outcome = run_optimized_exchange(
                program, placement, source, target, channel, scenario
            )
            return outcome.steps["communication"], outcome.comm_bytes

    seconds, comm_bytes = benchmark.pedantic(run, rounds=1,
                                             iterations=1)
    results.record(
        "table3", row_label, label, seconds,
        title="Table 3: communication times (secs)",
    )
    results.record(
        "table3-bytes", row_label, label, comm_bytes,
        title="Table 3 (volume): bytes on the wire",
    )


def test_table3_shape(results, size_labels):
    """DE ships less than publish&map, and LF targets less than MF."""
    cells = results.tables.get("table3-bytes")
    if not cells or len(cells) < 9:
        pytest.skip("cells incomplete (run the full module)")
    for label in size_labels:
        lf = cells[("DE (target LF)", label)]
        mf = cells[("DE (target MF)", label)]
        pm = cells[("publish&map", label)]
        assert lf < mf < pm, (lf, mf, pm, label)
