"""Ablation — shard scaling of the scatter/gather coordinator.

Runs the Figure 9 MF->LF scenario through the sharded federated
exchange at K in {1, 2, 4, 8} over a *realtime* simulated link (the
channel sleeps its transfer time, one stream per in-flight fragment),
so the measured wall clock feels the wire.  Each shard session ships
its exclusive grain rows plus the replicated spine; the K broker
sessions sleep their transfers concurrently, so wall clock should
fall roughly as Amdahl-over-the-spine predicts (the spine is the
serial fraction every shard re-ships).

Acceptance bounds, from the PR issue:

* K=4 reaches >= 1.5x the K=1 wall clock;
* every K leaves the published target byte-identical to the plain
  unsharded exchange.

The measured sweep is written to ``BENCH_shard.json`` at the repo
root (committed: the scaling trajectory across PRs).
"""

import json
import pathlib
import threading
import time

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.net.transport import NetworkProfile, SimulatedChannel
from repro.relational.publisher import publish_document
from repro.services.agency import DiscoveryAgency
from repro.services.broker import PlanCache
from repro.services.endpoint import RelationalEndpoint
from repro.services.exchange import run_optimized_exchange
from repro.services.shard import ScatterGatherCoordinator, ShardingSpec

_SHARD_COUNTS = (1, 2, 4, 8)
_SPEEDUP_FLOOR = 1.5
# Slow enough that transfer sleeps dominate compute at 2% scale; the
# shape (not the absolute seconds) is the measurement.
_LINK = NetworkProfile(
    "shard-bench", bandwidth_bytes_per_second=200_000.0,
    latency_seconds=0.002,
)
_RESULTS: dict[int, dict[str, object]] = {}
_DOCS: dict[int, object] = {}


@pytest.fixture(scope="module")
def model(schema):
    return CostModel(StatisticsCatalog.synthetic(schema))


@pytest.fixture(scope="module")
def shard_agency(schema, fragmentations, sources, size_labels):
    agency = DiscoveryAgency(schema)
    agency.register(
        "MF", fragmentations["MF"],
        sources[("MF", size_labels[-1])],
    )
    agency.register("LF", fragmentations["LF"])
    return agency


@pytest.fixture(scope="module")
def reference(shard_agency, fragmentations, model):
    """The unsharded answer over a zero-cost channel."""
    plan = shard_agency.negotiate("MF", "LF", probe=model)
    target = RelationalEndpoint("ref-LF", fragmentations["LF"])
    run_optimized_exchange(
        plan.annotate(), plan.placement,
        shard_agency.registration("MF").endpoint, target,
        SimulatedChannel(),
    )
    return publish_document(target.db, target.mapper).document


def _factory(fragmentation):
    lock = threading.Lock()

    def make(index):
        with lock:
            return RelationalEndpoint(f"bench-T{index}", fragmentation)

    return make


@pytest.mark.parametrize("shards", _SHARD_COUNTS)
def test_shard_scaling_sweep(benchmark, shards, shard_agency,
                             fragmentations, model, results):
    coordinator = ScatterGatherCoordinator(
        shard_agency, ShardingSpec(shards),
        probe=model, plan_cache=PlanCache(),
        channel_factory=lambda: SimulatedChannel(_LINK, realtime=True),
    )

    def run():
        started = time.perf_counter()
        outcome = coordinator.run(
            "MF", "LF", _factory(fragmentations["LF"])
        )
        return outcome, time.perf_counter() - started

    outcome, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not outcome.faults
    assert outcome.merged_rows > 0
    assert outcome.cached_sessions == shards - 1

    _DOCS[shards] = publish_document(
        outcome.merged_target.db, outcome.merged_target.mapper
    ).document
    _RESULTS[shards] = {
        "shards": shards,
        "strategy": "key-range",
        "wall_seconds": round(wall, 4),
        "exchange_seconds": round(outcome.exchange_seconds, 4),
        "gather_seconds": round(outcome.gather_seconds, 4),
        "comm_bytes": outcome.comm_bytes,
        "rows_written": outcome.rows_written,
        "duplicate_rows": outcome.duplicate_rows,
        "rows_per_second": round(outcome.rows_written / wall, 1),
    }
    results.record(
        "ablation-shard", f"K={shards}", "wall s", round(wall, 3),
        title="Ablation: shard scaling (Figure 9 MF->LF, realtime "
              "200 KB/s link, scatter/gather coordinator)",
    )
    results.record("ablation-shard", f"K={shards}", "comm bytes",
                   outcome.comm_bytes)


def test_shard_speedup_and_trajectory_file(reference, results):
    if len(_RESULTS) < len(_SHARD_COUNTS):
        pytest.skip("run the sweep first")

    # Byte-identity: every shard count publishes the unsharded answer.
    for shards, document in _DOCS.items():
        assert document == reference, f"K={shards} diverged"

    base = _RESULTS[1]["wall_seconds"]
    speedups = {}
    for shards in _SHARD_COUNTS:
        speedup = base / _RESULTS[shards]["wall_seconds"]
        speedups[f"K={shards}"] = round(speedup, 2)
        results.record("ablation-shard", f"K={shards}", "speedup",
                       f"{speedup:.2f}x")
    assert speedups["K=4"] >= _SPEEDUP_FLOOR, speedups

    # Spine replication is the price: total bytes grow with K, while
    # the wall clock falls — exactly the Amdahl-over-the-spine trade.
    assert _RESULTS[8]["comm_bytes"] >= _RESULTS[1]["comm_bytes"]

    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_shard.json"
    payload = {
        "experiment": "shard-scaling",
        "scenario": "MF->LF",
        "document": "25MB ladder entry x REPRO_SCALE",
        "channel": "simulated realtime, 200 KB/s, 2 ms latency",
        "speedup_floor": _SPEEDUP_FLOOR,
        "speedups": speedups,
        "sweep": {str(k): v for k, v in sorted(_RESULTS.items())},
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    results.note(
        "ablation-shard",
        f"trajectory written to {out.name}",
    )
