"""Figures 3–6 and 8 — the program DAGs themselves.

These figures are program listings, not measurements; the bench
regenerates each one, asserts its exact operation inventory, times the
generation, and prints the rendered programs so they can be compared to
the paper side by side.
"""

import pytest

from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.program.builder import build_transfer_program
from repro.core.program.render import summary, to_text
from repro.workloads.customer import (
    customer_schema,
    s_fragmentation,
    t_fragmentation,
)
from repro.workloads.xmark import (
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)

_CASES = {
    # figure: (mapping factory, expected op inventory)
    "Figure 3 (publish S->doc)": ("customer", "S", "DOC",
                                  "scan=5 combine=4 split=0 write=1"),
    "Figure 4 (load doc->T)": ("customer", "DOC", "T",
                               "scan=1 combine=0 split=1 write=4"),
    "Figure 5/6 (S->T)": ("customer", "S", "T",
                          "scan=5 combine=2 split=1 write=4"),
    "Figure 8 (MF->LF)": ("xmark", "MF", "LF",
                          "scan=24 combine=21 split=0 write=3"),
}


def _fragmentations(workload):
    if workload == "customer":
        schema = customer_schema()
        return schema, {
            "S": s_fragmentation(schema),
            "T": t_fragmentation(schema),
            "DOC": Fragmentation.whole_document(schema),
        }
    schema = xmark_schema()
    return schema, {
        "MF": xmark_mf_fragmentation(schema),
        "LF": xmark_lf_fragmentation(schema),
    }


@pytest.mark.parametrize("figure", sorted(_CASES))
def test_program_figure(benchmark, figure, results):
    workload, source_key, target_key, expected = _CASES[figure]
    _, fragmentations = _fragmentations(workload)
    mapping = derive_mapping(
        fragmentations[source_key], fragmentations[target_key]
    )

    program = benchmark.pedantic(
        lambda: build_transfer_program(mapping), rounds=1, iterations=1
    )
    program.validate()
    assert summary(program) == expected
    results.record(
        "figures3to8", figure, "operations", summary(program),
        title="Figures 3-6/8: regenerated program inventories",
    )
    results.note("figures3to8", f"\n{figure}:\n{to_text(program)}")


def test_figure6_intermediate_graph(results):
    """Figure 6 is G1 — the graph *before* combines are added: the
    dangling Write(Line_Switch) and Write(Order_Service) are exactly
    the assemblies the builder reports."""
    schema = customer_schema()
    mapping = derive_mapping(
        s_fragmentation(schema), t_fragmentation(schema)
    )
    from repro.core.program.builder import ProgramBuilder

    builder = ProgramBuilder(mapping)
    g1, assemblies = builder.skeleton()
    dangling = sorted(assembly.target.name for assembly in assemblies)
    assert dangling == ["Line_Switch", "Order_Service"]
    assert summary(g1) == "scan=5 combine=0 split=1 write=4"
    results.record(
        "figures3to8", "Figure 6 (G1)", "operations", summary(g1),
    )
    results.note(
        "figures3to8",
        f"\nFigure 6 dangling writes: {', '.join(dangling)}",
    )
