"""Ablation — the columnar dataplane vs the row dataplane.

Runs the Figure 9 MF->LF scenario — the Combine-heaviest of the four
(21 combines: the many-fragment source must be stitched into the
large-fragment target) — three ways at the same ``batch_rows``: the
row dataplane, the columnar dataplane with the hash join forced, and
the columnar dataplane with the merge join forced.  The channel is a
zero-cost :class:`SimulatedChannel` so the wall clock measures compute
throughput, which is what the columnar rewrite targets; rows/sec is
the figure of merit.

Two acceptance bounds, both from the PR issue:

* both columnar variants reach >= 3x the row dataplane's rows/sec;
* every variant leaves the target byte-identical to the row run.

The measured ablation is written to ``BENCH_columnar.json`` at the
repo root (committed: the perf trajectory across PRs).
"""

import json
import pathlib
import time

import pytest

from repro.core.program.executor import ProgramExecutor
from repro.net.transport import SimulatedChannel

_BATCH_ROWS = 256
_SPEEDUP_FLOOR = 3.0
_CONFIGS = (
    ("row", False, None),
    ("columnar-hash", True, "hash"),
    ("columnar-merge", True, "merge"),
)
_RESULTS: dict[str, dict[str, object]] = {}
_DUMPS: dict[str, list] = {}


def _table_dump(endpoint):
    """Every stored tuple of every fragment table, order-insensitive."""
    dump = []
    for layout in endpoint.mapper.layouts.values():
        rows = sorted(
            endpoint.db.table(layout.table_name).scan(), key=repr
        )
        dump.append((layout.table_name, rows))
    return dump


@pytest.mark.parametrize(
    "label,columnar,join_strategy", _CONFIGS,
    ids=[config[0] for config in _CONFIGS],
)
def test_columnar_sweep(benchmark, label, columnar, join_strategy,
                        size_labels, sources, programs, fresh_target,
                        results):
    size = size_labels[-1]
    source = sources[("MF", size)]
    program, placement = programs["MF->LF"]
    combines = sum(
        1 for node in program.nodes if node.kind == "combine"
    )
    assert combines == 21  # the Figure 9 Combine-heavy scenario

    def run():
        target = fresh_target("LF")
        channel = SimulatedChannel()
        started = time.perf_counter()
        report = ProgramExecutor(
            source, target, channel, batch_rows=_BATCH_ROWS,
            columnar=columnar, join_strategy=join_strategy,
        ).run(program, placement)
        wall = time.perf_counter() - started
        return report, wall, target

    report, wall, target = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # MF->LF combines merge source rows into wider target tuples, so
    # row counts shrink; byte-identity across the three variants is
    # asserted on the full table dumps below.
    assert target.total_rows() > 0
    assert report.rows_written == target.total_rows()

    _DUMPS[label] = _table_dump(target)
    _RESULTS[label] = {
        "columnar": columnar,
        "join_strategy": join_strategy or "row",
        "batch_rows": _BATCH_ROWS,
        "combines": combines,
        "rows_written": report.rows_written,
        "wall_seconds": round(wall, 4),
        "rows_per_second": round(report.rows_written / wall, 1),
    }
    results.record(
        "ablation-columnar", label, "wall s", round(wall, 3),
        title="Ablation: columnar dataplane vs row dataplane "
              "(Figure 9 MF->LF, 21 combines, zero-cost channel)",
    )
    results.record("ablation-columnar", label, "rows/s",
                   round(report.rows_written / wall, 1))


def test_columnar_speedup_and_trajectory_file(results):
    if len(_RESULTS) < len(_CONFIGS):
        pytest.skip("run the sweep first")
    row = _RESULTS["row"]

    # Byte-identity: both join strategies leave the target exactly as
    # the row dataplane does.
    for label in ("columnar-hash", "columnar-merge"):
        assert _DUMPS[label] == _DUMPS["row"], label

    # The acceptance bound: >= 3x rows/sec over the row dataplane.
    speedups = {}
    for label in ("columnar-hash", "columnar-merge"):
        speedup = (_RESULTS[label]["rows_per_second"]
                   / row["rows_per_second"])
        speedups[label] = round(speedup, 2)
        assert speedup >= _SPEEDUP_FLOOR, (label, speedup)
        results.record("ablation-columnar", label, "speedup",
                       f"{speedup:.2f}x")
    results.record("ablation-columnar", "row", "speedup", "1.00x")

    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_columnar.json"
    payload = {
        "experiment": "columnar-ablation",
        "scenario": "MF->LF",
        "document": "25MB ladder entry x REPRO_SCALE",
        "channel": "simulated, zero-cost (compute-bound comparison)",
        "speedup_floor": _SPEEDUP_FLOOR,
        "speedups": speedups,
        "sweep": _RESULTS,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    results.note(
        "ablation-columnar",
        f"trajectory written to {out.name}",
    )
