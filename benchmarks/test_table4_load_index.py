"""Table 4 — Times to load the target DB and create indices.

Two rows (MF and LF targets), one ``load+index`` pair per document
size.  Loading and indexing are identical between DE and publish&map
(the same data lands either way), so the cells are measured once from
an optimized exchange into a fresh target.

Shape to reproduce: the MF target costs more on both components — it
has 24 tables and one row per element, versus LF's 3 tables.
"""

import pytest

from repro.services.exchange import run_optimized_exchange


@pytest.mark.parametrize("label_index", [0, 1, 2])
@pytest.mark.parametrize("target_kind", ["MF", "LF"])
def test_table4_cell(benchmark, target_kind, label_index, size_labels,
                     sources, programs, fresh_target, channel, results):
    label = size_labels[label_index]
    scenario = f"LF->{target_kind}"
    source = sources[("LF", label)]
    program, placement = programs[scenario]

    def run():
        target = fresh_target(target_kind)
        outcome = run_optimized_exchange(
            program, placement, source, target, channel, scenario
        )
        return outcome.steps["loading"], outcome.steps["indexing"]

    load_seconds, index_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    results.record(
        "table4", target_kind, label,
        f"{load_seconds:.3f}+{index_seconds:.3f}",
        title="Table 4: times (secs) to load target db (first value)"
              " and create indices (second value)",
    )
    results.record("table4-load", target_kind, label, load_seconds,
                   title="Table 4a: load component (secs)")
    results.record("table4-index", target_kind, label, index_seconds,
                   title="Table 4b: index component (secs)")


def test_table4_shape(results, size_labels):
    """MF targets pay more than LF targets for loading and indexing."""
    load = results.tables.get("table4-load")
    index = results.tables.get("table4-index")
    if not load or len(load) < 6:
        pytest.skip("cells incomplete (run the full module)")
    largest = size_labels[-1]
    assert load[("MF", largest)] > load[("LF", largest)]
    assert index[("MF", largest)] > index[("LF", largest)]
