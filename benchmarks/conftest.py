"""Shared benchmark fixtures: workloads, endpoints, result tables.

Every benchmark records the paper-facing numbers into a session-wide
collector; :func:`pytest_terminal_summary` prints each experiment's
table in the paper's layout after the run.  Document sizes follow the
paper's 2.5/12.5/25 MB ladder scaled by ``REPRO_SCALE`` (default 0.02 —
see DESIGN.md; set ``REPRO_SCALE=1.0`` to run at full size).
"""

from __future__ import annotations

import os
from collections import defaultdict

import pytest

from repro.core.mapping import derive_mapping
from repro.core.optimizer.placement import source_heavy_placement
from repro.core.program.builder import build_transfer_program
from repro.net.transport import SimulatedChannel
from repro.reporting.tables import format_table
from repro.services.endpoint import RelationalEndpoint
from repro.workloads.sizes import DOCUMENT_SIZES_MB, scaled_bytes, \
    size_label
from repro.workloads.xmark import (
    generate_xmark_document,
    xmark_lf_fragmentation,
    xmark_mf_fragmentation,
    xmark_schema,
)

from support import SCENARIOS


class ResultCollector:
    """Accumulates (experiment, row, column) -> value cells."""

    def __init__(self) -> None:
        self.tables: dict[str, dict[tuple[str, str], object]] = \
            defaultdict(dict)
        self.titles: dict[str, str] = {}
        self.notes: dict[str, list[str]] = defaultdict(list)

    def record(self, experiment: str, row: str, column: str,
               value: object, title: str | None = None) -> None:
        self.tables[experiment][(row, column)] = value
        if title:
            self.titles[experiment] = title

    def note(self, experiment: str, text: str) -> None:
        self.notes[experiment].append(text)

    def render(self, experiment: str) -> str:
        cells = self.tables[experiment]
        rows = sorted({key[0] for key in cells})
        columns = sorted({key[1] for key in cells})
        # Keep the paper's natural orders where recognizable.
        rows = _paper_order(rows)
        columns = _paper_order(columns)
        body = [
            [row] + [cells.get((row, column), "-") for column in columns]
            for row in rows
        ]
        table = format_table(
            [""] + columns, body,
            title=self.titles.get(experiment, experiment),
        )
        extra = "\n".join(self.notes.get(experiment, []))
        return table + ("\n" + extra if extra else "")


def _paper_order(keys: list[str]) -> list[str]:
    preferred = [
        "2.5MB", "12.5MB", "25MB",
        "MF->MF", "MF->LF", "LF->MF", "LF->LF",
        "5/1", "2/1", "1/1", "1/2", "1/5",
    ]
    ranked = [key for key in preferred if key in keys]
    return ranked + [key for key in keys if key not in ranked]


_COLLECTOR = ResultCollector()


@pytest.fixture(scope="session")
def results() -> ResultCollector:
    return _COLLECTOR


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _COLLECTOR.tables:
        return
    terminalreporter.section("paper tables and figures (measured)")
    for experiment in sorted(_COLLECTOR.tables):
        terminalreporter.write_line("")
        for line in _COLLECTOR.render(experiment).splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")


# -- workload fixtures ---------------------------------------------------------


@pytest.fixture(scope="session")
def schema():
    return xmark_schema()


@pytest.fixture(scope="session")
def fragmentations(schema):
    return {
        "MF": xmark_mf_fragmentation(schema),
        "LF": xmark_lf_fragmentation(schema),
    }


@pytest.fixture(scope="session")
def size_labels():
    return [size_label(size) for size in DOCUMENT_SIZES_MB]


@pytest.fixture(scope="session")
def documents(schema):
    """One scaled document per ladder entry, generated once."""
    return {
        size_label(size): generate_xmark_document(
            scaled_bytes(size), seed=42, schema=schema
        )
        for size in DOCUMENT_SIZES_MB
    }


@pytest.fixture(scope="session")
def sources(fragmentations, documents):
    """Loaded source endpoints, one per (fragmentation, size)."""
    loaded = {}
    for frag_name, fragmentation in fragmentations.items():
        for label, document in documents.items():
            endpoint = RelationalEndpoint(
                f"src-{frag_name}-{label}", fragmentation
            )
            endpoint.load_document(document)
            loaded[(frag_name, label)] = endpoint
    return loaded


@pytest.fixture(scope="session")
def programs(fragmentations):
    """Canonical transfer programs with the paper's placement (all
    non-Write operations at the source, Section 5.3)."""
    built = {}
    for scenario in SCENARIOS:
        source_kind, target_kind = scenario.split("->")
        program = build_transfer_program(
            derive_mapping(
                fragmentations[source_kind],
                fragmentations[target_kind],
            )
        )
        built[scenario] = (program, source_heavy_placement(program))
    return built


@pytest.fixture
def fresh_target(fragmentations):
    """Factory for empty target endpoints."""
    counter = [0]

    def make(target_kind: str) -> RelationalEndpoint:
        counter[0] += 1
        return RelationalEndpoint(
            f"tgt-{target_kind}-{counter[0]}",
            fragmentations[target_kind],
        )

    return make


@pytest.fixture
def channel():
    return SimulatedChannel()
