"""Ablation — adaptive suffix re-placement under a mis-calibrated
cost model.

A plan negotiated against a probe that overprices Combine 4x mis-places
operations whenever the wire is slow enough that placement matters.
Three runs of the same exchange measure what that error costs and how
much of it mid-flight adaptation claws back:

* **static** — the mis-calibrated plan, executed as negotiated;
* **adaptive** — the same plan, but an :class:`~repro.adapt.executor.
  AdaptiveRun` observes true per-op costs (injected deterministically
  from the true model), notices the per-kind divergence and re-places
  the not-yet-started suffix;
* **oracle** — the plan the optimizer finds when given the true model
  up front.

All three write byte-identical fragments; only the realized formula-1
cost differs.  The acceptance bound — adaptation recovers at least
half the oracle gap — is asserted and the trajectory is written to
``BENCH_adaptive.json`` at the repo root, alongside the simulator's
analytic prediction for an equivalent substrate
(:meth:`~repro.sim.simulator.ExchangeSimulator.
adaptive_exchange_costs`).
"""

import json
import pathlib
import random
import time

import pytest

from repro.adapt.executor import AdaptiveConfig, AdaptiveRun
from repro.adapt.replan import ScaledProbe
from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.optimizer.exhaustive import cost_based_optim
from repro.core.program.builder import build_transfer_program
from repro.core.program.executor import ProgramExecutor
from repro.net.transport import SimulatedChannel
from repro.relational.publisher import publish_document
from repro.schema.generator import random_schema
from repro.services.endpoint import RelationalEndpoint
from repro.sim.random_fragmentation import random_fragmentation
from repro.sim.simulator import ExchangeSimulator
from repro.workloads.docgen import generate_document

_SCHEMA_SEED = 2
_RNG_SEED = 2
_MISCALIBRATION = 4.0  # believed combine cost / true combine cost
_RESULTS: dict[str, dict] = {}


def _flat_fragmentation(schema, rng, name):
    """A random valid fragmentation whose fragments are all flat
    (every repeated element a fragment root)."""
    required = {schema.root.name} | {
        node.name for node in schema.iter_nodes()
        if node.cardinality.repeated
    }
    optional = [
        element for element in schema.element_names()
        if element not in required
    ]
    extras = [
        element for element in optional if rng.random() < 0.4
    ]
    return Fragmentation.from_roots(
        schema, sorted(required | set(extras)), name
    )


def _scenario():
    schema = random_schema(12, seed=_SCHEMA_SEED, repeat_prob=0.5)
    rng = random.Random(_RNG_SEED)
    source_frag = _flat_fragmentation(schema, rng, "A")
    target_frag = _flat_fragmentation(schema, rng, "B")
    document = generate_document(schema, seed=_SCHEMA_SEED + 3)
    # A slow wire to an 8x-faster target: where combines run matters,
    # so the 4x combine overprice genuinely flips placements.
    true_model = CostModel(
        StatisticsCatalog.synthetic(schema),
        source=MachineProfile("s"),
        target=MachineProfile("t", speed=8.0),
        bandwidth=1.0,
    )
    believed = ScaledProbe(
        true_model,
        {"scan": 1.0, "combine": _MISCALIBRATION,
         "split": 1.0, "write": 1.0},
        1.0,
    )
    return schema, source_frag, target_frag, document, \
        true_model, believed


def test_adaptive_ablation(benchmark, results):
    (schema, source_frag, target_frag, document,
     true_model, believed) = _scenario()
    weights = true_model.weights
    source = RelationalEndpoint("A", source_frag)
    source.load_document(document)
    reference = publish_document(source.db, source.mapper).document
    program = build_transfer_program(
        derive_mapping(source_frag, target_frag)
    )
    static_placement, _ = cost_based_optim(program, believed, weights)
    oracle_placement, oracle_cost = cost_based_optim(
        program, true_model, weights
    )
    static_cost = true_model.breakdown(program, static_placement).total
    assert static_cost > oracle_cost, \
        "the miscalibration must open a gap for this ablation"

    documents = {}
    for mode, placement in (("static", static_placement),
                            ("oracle", oracle_placement)):
        target = RelationalEndpoint(f"T-{mode}", target_frag)
        started = time.perf_counter()
        ProgramExecutor(source, target, SimulatedChannel()).run(
            program, dict(placement)
        )
        seconds = time.perf_counter() - started
        documents[mode] = publish_document(
            target.db, target.mapper
        ).document
        cost = true_model.breakdown(program, placement).total
        _RESULTS[mode] = {
            "formula1_cost": round(cost, 4),
            "wall_seconds": round(seconds, 4),
        }

    config = AdaptiveConfig(
        probe=believed, weights=weights, replan_threshold=0.5,
        comp_feedback=lambda node, location, strategy, seconds:
            true_model.comp_cost(node, location),
        comm_feedback=lambda fragment, seconds:
            true_model.comm_cost(fragment),
    )
    target = RelationalEndpoint("T-adaptive", target_frag)
    run = AdaptiveRun(
        program, dict(static_placement), source, target,
        SimulatedChannel(), config=config,
    )

    def execute():
        return run.run()

    report = benchmark.pedantic(execute, rounds=1, iterations=1)
    documents["adaptive"] = publish_document(
        target.db, target.mapper
    ).document
    adaptive_cost = true_model.breakdown(program, run.placement).total
    _RESULTS["adaptive"] = {
        "formula1_cost": round(adaptive_cost, 4),
        "wall_seconds": round(report.wall_seconds, 4),
        "replans": run.replans,
        "ops_moved": run.ops_moved,
        "checkpoints": run.checkpoints,
    }

    # Adaptation changed where ops ran, not what they produced.
    assert run.replans > 0 and run.ops_moved > 0
    assert documents["static"] == documents["adaptive"] \
        == documents["oracle"] == reference

    recovered = (static_cost - adaptive_cost) \
        / (static_cost - oracle_cost)
    _RESULTS["recovered_fraction"] = round(recovered, 3)
    # The acceptance bound: at least half the oracle gap reclaimed.
    assert recovered >= 0.5

    title = (f"Ablation: adaptive suffix re-placement, combine "
             f"mis-calibrated {_MISCALIBRATION:g}x "
             f"(bandwidth 1.0, target speed 8x)")
    for mode in ("static", "adaptive", "oracle"):
        results.record(
            "ablation-adaptive", mode, "formula-1 cost",
            _RESULTS[mode]["formula1_cost"], title=title,
        )
    results.record("ablation-adaptive", "adaptive", "ops moved",
                   run.ops_moved)
    results.record("ablation-adaptive", "adaptive", "recovered",
                   f"{recovered:.0%}")


def test_adaptive_trajectory_file(results):
    if "recovered_fraction" not in _RESULTS:
        pytest.skip("run the ablation first")

    sim_schema = random_schema(12, seed=8, repeat_prob=0.5)
    predicted = ExchangeSimulator(
        sim_schema, bandwidth=1.0
    ).adaptive_exchange_costs(
        random_fragmentation(sim_schema, n_fragments=6, seed=108,
                             name="A"),
        random_fragmentation(sim_schema, n_fragments=5, seed=208,
                             name="B"),
        MachineProfile("s"), MachineProfile("t", speed=8.0),
        miscalibration={"combine": _MISCALIBRATION},
    )
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_adaptive.json"
    payload = {
        "experiment": "adaptive-ablation",
        "scenario": f"random schema seed {_SCHEMA_SEED}, "
                    f"combine mis-calibrated {_MISCALIBRATION:g}x, "
                    f"bandwidth 1.0, target speed 8x",
        "measured": _RESULTS,
        "simulated": {
            "static_cost": round(predicted.static_cost, 4),
            "adaptive_cost": round(predicted.adaptive_cost, 4),
            "oracle_cost": round(predicted.oracle_cost, 4),
            "gap": round(predicted.gap, 4),
            "moved_ops": predicted.moved_ops,
            "pinned_ops": predicted.pinned_ops,
            "recovered_fraction": round(
                predicted.recovered_fraction, 3
            ),
        },
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert predicted.recovered_fraction >= 0.5
    results.note(
        "ablation-adaptive",
        f"trajectory written to {out.name} (measured recovery "
        f"{_RESULTS['recovered_fraction']:.0%}, predicted "
        f"{predicted.recovered_fraction:.0%})",
    )
