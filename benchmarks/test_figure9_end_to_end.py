"""Figure 9 — End-to-end transfer breakdown, DE vs publish&map.

The paper stacks, for the 25 MB document and each of the four
scenarios, the times for: processing at the source, communication,
shredding (PM only), loading the target DB and indexing.  Optimized DE
saves 23–43% end-to-end depending on the scenario, and is "up to six
times faster in data processing".

This bench reruns the full pipelines at the scaled 25 MB size and
prints the same stacked rows plus the per-scenario saving.
"""

import pytest

from repro.services.exchange import (
    STEPS,
    run_optimized_exchange,
    run_publish_and_map,
)

from support import SCENARIOS

_SAVINGS: dict[str, float] = {}
_SPEEDUPS: dict[str, float] = {}


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_figure9_scenario(benchmark, scenario, size_labels, sources,
                          programs, fresh_target, channel, results):
    label = size_labels[-1]  # the paper charts the 25MB document
    source_kind, target_kind = scenario.split("->")
    source = sources[(source_kind, label)]
    program, placement = programs[scenario]

    def run_both():
        de_target = fresh_target(target_kind)
        de = run_optimized_exchange(
            program, placement, source, de_target, channel, scenario
        )
        pm_target = fresh_target(target_kind)
        pm = run_publish_and_map(source, pm_target, channel, scenario)
        return de, pm

    de, pm = benchmark.pedantic(run_both, rounds=1, iterations=1)

    for outcome, tag in ((de, "DE"), (pm, "PM")):
        for step in STEPS:
            results.record(
                "figure9", f"{scenario} {tag}", step,
                outcome.steps[step],
                title=(
                    "Figure 9: end-to-end transfer breakdown (secs), "
                    f"document size {label}"
                ),
            )
        results.record("figure9", f"{scenario} {tag}", "TOTAL",
                       outcome.total_seconds)

    saving = 100.0 * (1.0 - de.total_seconds / pm.total_seconds)
    _SAVINGS[scenario] = saving
    _SPEEDUPS[scenario] = (
        pm.data_processing_seconds
        / max(de.data_processing_seconds, 1e-9)
    )
    results.record(
        "figure9-savings", scenario, "saving %", saving,
        title="Figure 9 (derived): DE saving over PM, and data-"
              "processing speedup (paper: 23-43% / up to 6x)",
    )
    results.record(
        "figure9-savings", scenario, "processing speedup x",
        _SPEEDUPS[scenario],
    )


def test_figure9_shape():
    """DE saves in every scenario; processing speedups are > 1."""
    if len(_SAVINGS) < len(SCENARIOS):
        pytest.skip("cells incomplete (run the full module)")
    for scenario, saving in _SAVINGS.items():
        assert saving > 0, (scenario, saving)
    assert max(_SAVINGS.values()) > 15.0
    assert all(speedup > 1.0 for speedup in _SPEEDUPS.values())
