"""Optimizer scaling — the Section 4.3 motivation for greedy.

    "In our tests, we saw that optimal program generation takes too
    long for XML Schemas with more than 40 nodes.  For such cases, we
    propose a single algorithm that chooses combine ordering and
    distributed processing greedily."

This bench sweeps schema sizes and measures both optimizers under the
same (uncapped-within-budget) conditions: exhaustive search time grows
steeply with the schema while greedy stays in the low milliseconds.
"""

import random

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel, MachineProfile
from repro.core.mapping import derive_mapping
from repro.core.optimizer.search import greedy_exchange, optimal_exchange
from repro.schema.generator import balanced_schema
from repro.sim.random_fragmentation import random_fragmentation

#: (levels, fanout) -> node counts 13 / 31 / 57.
_SIZES = (("13", 2, 3), ("31", 2, 5), ("57", 2, 7))

_TIMES: dict[str, tuple[float, float]] = {}


@pytest.mark.parametrize("label,levels,fanout", _SIZES,
                         ids=[size[0] for size in _SIZES])
def test_scaling_point(benchmark, label, levels, fanout, results):
    schema = balanced_schema(levels, fanout, seed=9)
    assert str(len(schema)) == label
    model = CostModel(
        StatisticsCatalog.synthetic(schema),
        source=MachineProfile("s", speed=2.0),
        target=MachineProfile("t"),
    )
    rng = random.Random(7)
    n_fragments = max(3, len(schema) // 3)
    source = random_fragmentation(
        schema, n_fragments=n_fragments, rng=rng, name="S"
    )
    target = random_fragmentation(
        schema, n_fragments=n_fragments, rng=rng, name="T"
    )
    mapping = derive_mapping(source, target)

    def run():
        optimal = optimal_exchange(mapping, model, order_limit=200)
        greedy = greedy_exchange(mapping, model)
        return optimal, greedy

    optimal, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    _TIMES[label] = (optimal.elapsed_seconds, greedy.elapsed_seconds)
    results.record(
        "optimizer-scaling", f"{label} nodes", "optimal secs",
        round(optimal.elapsed_seconds, 4),
        title="Optimizer scaling: exhaustive vs greedy (Section 4.3's"
              " motivation)",
    )
    results.record(
        "optimizer-scaling", f"{label} nodes", "greedy secs",
        round(greedy.elapsed_seconds, 5),
    )
    results.record(
        "optimizer-scaling", f"{label} nodes", "programs searched",
        optimal.programs_considered,
    )
    results.record(
        "optimizer-scaling", f"{label} nodes",
        "greedy/best-found cost",
        round(greedy.cost / optimal.cost, 4),
    )
    if greedy.cost < optimal.cost:
        results.note(
            "optimizer-scaling",
            f"note: at {label} nodes greedy beat the order-capped "
            "exhaustive search — the order space exceeds the cap, "
            "which is precisely the paper's point.",
        )


def test_scaling_shape():
    if len(_TIMES) < len(_SIZES):
        pytest.skip("run the sweep first")
    # Greedy stays in the milliseconds at every size...
    assert all(greedy < 0.05 for _, greedy in _TIMES.values())
    # ...while the exhaustive search grows steeply with schema size.
    assert _TIMES["57"][0] > 5 * _TIMES["13"][0]
    assert _TIMES["57"][0] > 20 * _TIMES["57"][1]
