"""Figure 10 — Simulated DE vs publishing, similar systems.

The paper's configuration: a balanced DTD with 3 levels and fan-out 4,
source and target each holding a different complete set of 11 randomly
selected fragments, equally fast machines.  Optimized data exchange
cuts about 65% of the estimated publishing-only cost.
"""

import random

import pytest

from repro.core.cost.model import MachineProfile
from repro.schema.generator import balanced_schema
from repro.sim.random_fragmentation import random_fragmentation
from repro.sim.simulator import ExchangeSimulator

from support import N_TRIALS, ORDER_LIMIT

_REDUCTIONS: list[float] = []


def test_figure10_equal_machines(benchmark, results):
    schema = balanced_schema(3, 4, seed=5)
    simulator = ExchangeSimulator(schema)
    rng = random.Random(11)

    def run_trials():
        measurements = []
        for _ in range(N_TRIALS):
            source = random_fragmentation(
                schema, n_fragments=11, rng=rng, name="S"
            )
            target = random_fragmentation(
                schema, n_fragments=11, rng=rng, name="T"
            )
            measurements.append(
                simulator.exchange_costs(
                    source, target,
                    MachineProfile("source"), MachineProfile("target"),
                    order_limit=ORDER_LIMIT,
                )
            )
        return measurements

    measurements = benchmark.pedantic(run_trials, rounds=1,
                                      iterations=1)
    exchange_comp = sum(m.exchange.computation for m in measurements) \
        / len(measurements)
    exchange_comm = sum(m.exchange.communication for m in measurements) \
        / len(measurements)
    publish_comp = sum(m.publish.computation for m in measurements) \
        / len(measurements)
    publish_comm = sum(m.publish.communication for m in measurements) \
        / len(measurements)
    reduction = sum(m.reduction_percent for m in measurements) \
        / len(measurements)
    _REDUCTIONS.append(reduction)

    title = ("Figure 10: estimated cost, optimized DE vs publishing, "
             "similar source and target (paper: ~65% reduction)")
    results.record("figure10", "Data Exchange", "computation",
                   exchange_comp, title=title)
    results.record("figure10", "Data Exchange", "communication",
                   exchange_comm)
    results.record("figure10", "Publish", "computation", publish_comp)
    results.record("figure10", "Publish", "communication",
                   publish_comm)
    results.note(
        "figure10",
        f"average reduction over {len(measurements)} trials: "
        f"{reduction:.1f}%",
    )


def test_figure10_shape():
    if not _REDUCTIONS:
        pytest.skip("run the measuring bench first")
    # The paper reports ~65%; accept a generous band around it.
    assert 30.0 <= _REDUCTIONS[0] <= 85.0
