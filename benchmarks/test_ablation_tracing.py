"""Ablation — the cost of observing the exchange.

The tracing layer promises a documented no-op fast path: with no
tracer configured every call site dispatches to ``NULL_TRACER`` and
nothing else happens, so tracing-off runs must be indistinguishable
from the pre-observability executor.  With a live tracer every
operation, shipment, and step records one span — bounded, append-only
work that must stay under a few percent of the Figure 9 MF->MF run.

Measured numbers land in ``BENCH_tracing.json`` at the repo root.
"""

import json
import pathlib
import time

import pytest

from repro.core.program.executor import ProgramExecutor
from repro.net.transport import SimulatedChannel
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer

#: Best-of-N wall clocks; min filters scheduler noise.
_ROUNDS = 5

_RESULTS: dict[str, object] = {}


def _run_once(sources, programs, fresh_target, label, tracer,
              metrics):
    source = sources[("MF", label)]
    program, placement = programs["MF->MF"]
    executor = ProgramExecutor(
        source, fresh_target("MF"), SimulatedChannel(),
        tracer=tracer, metrics=metrics,
    )
    started = time.perf_counter()
    report = executor.run(program, placement)
    return time.perf_counter() - started, report


def _best_of(sources, programs, fresh_target, label, make_tracer,
             make_metrics):
    best = float("inf")
    spans = 0
    for _ in range(_ROUNDS):
        tracer = make_tracer()
        wall, _ = _run_once(
            sources, programs, fresh_target, label, tracer,
            make_metrics(),
        )
        best = min(best, wall)
        if tracer is not None:
            spans = len(tracer.spans)
    return best, spans


def test_tracing_overhead(benchmark, sources, programs, fresh_target,
                          size_labels, results):
    label = size_labels[-1]

    def measure():
        off, _ = _best_of(
            sources, programs, fresh_target, label,
            lambda: None, lambda: None,
        )
        on, spans = _best_of(
            sources, programs, fresh_target, label,
            Tracer, MetricsRegistry,
        )
        return off, on, spans

    _RESULTS["document"] = label

    off, on, spans = benchmark.pedantic(measure, rounds=1,
                                        iterations=1)
    ratio = on / max(off, 1e-9)
    _RESULTS.update({
        "tracing_off_seconds": round(off, 5),
        "tracing_on_seconds": round(on, 5),
        "overhead_ratio": round(ratio, 4),
        "spans_recorded": spans,
    })
    results.record(
        "ablation-tracing", "MF->MF program phase", "off s",
        round(off, 4),
        title="Ablation: tracing overhead on the Figure 9 MF->MF run",
    )
    results.record("ablation-tracing", "MF->MF program phase", "on s",
                   round(on, 4))
    results.record("ablation-tracing", "MF->MF program phase",
                   "on/off", round(ratio, 3))
    results.record("ablation-tracing", "MF->MF program phase",
                   "spans", spans)


def test_null_tracer_dispatch_is_nanoseconds(results):
    """The no-op fast path: a NULL_TRACER.record call must cost on the
    order of a method dispatch, not a lock acquisition."""
    calls = 100_000
    started = time.perf_counter()
    for _ in range(calls):
        NULL_TRACER.record("x", "op", seconds=0.0)
    per_call = (time.perf_counter() - started) / calls
    _RESULTS["null_record_nanoseconds"] = round(per_call * 1e9, 1)
    results.record(
        "ablation-tracing", "NULL_TRACER.record", "ns/call",
        round(per_call * 1e9, 1),
    )
    # Generous bound: even a slow interpreter dispatches a no-op
    # method in well under 5 µs.
    assert per_call < 5e-6


def test_tracing_shape_and_bench_file(results):
    if "overhead_ratio" not in _RESULTS:
        pytest.skip("run the measuring bench first")
    # Acceptance: tracing-on stays under 5% of the untraced run, and
    # a real trace was actually recorded while measuring it.
    assert _RESULTS["spans_recorded"] > 0
    assert _RESULTS["overhead_ratio"] < 1.05, _RESULTS

    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_tracing.json"
    payload = {
        "experiment": "tracing-ablation",
        "scenario": "MF->MF",
        "rounds": _ROUNDS,
        **_RESULTS,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    results.note(
        "ablation-tracing",
        f"measurements written to {out.name}",
    )
