"""Shared constants for the benchmark modules."""

from __future__ import annotations

import os

#: The four exchange scenarios of Section 5.
SCENARIOS = ("MF->MF", "MF->LF", "LF->MF", "LF->LF")

#: Trials per configuration in the simulation benches (paper: 10).
N_TRIALS = int(os.environ.get("REPRO_TRIALS", "5"))

#: Combine-order cap for exhaustive searches (the paper notes optimal
#: generation is impractical beyond ~40-node schemas; the cap keeps the
#: bench suite bounded while still searching a meaningful space).
ORDER_LIMIT = int(os.environ.get("REPRO_ORDER_LIMIT", "60"))
