"""Ablation — fragmentation granularity between MF and LF.

The paper's two fragmentations are the extremes of a spectrum.  This
ablation walks source fragmentations from most-fragmented (24
fragments) down to least-fragmented (3) against a fixed LF target and
charts the estimated exchange cost: the closer the source's granularity
is to the target's, the fewer combines the program needs and the
cheaper the exchange — the quantitative version of the paper's "if data
could be sent fragmented, unnecessary computations would be avoided".
"""

import pytest

from repro.core.cost.estimates import StatisticsCatalog
from repro.core.cost.model import CostModel
from repro.core.fragmentation import Fragmentation
from repro.core.mapping import derive_mapping
from repro.core.optimizer.search import greedy_exchange

_COSTS: dict[int, float] = {}
_COMBINES: dict[int, int] = {}


def _source_roots(schema, level: int) -> list[str]:
    """Fragment roots for granularity ``level``: LF's boundaries plus
    progressively more cut points, deepest elements first."""
    lf_roots = [schema.root.name] + [
        node.name for node in schema.iter_nodes()
        if node.cardinality.repeated
    ]
    extras = [
        node.name for node in schema.iter_nodes()
        if node.name not in lf_roots
    ]
    extras.sort(key=lambda name: -schema.depth(name))
    return lf_roots + extras[:level]


@pytest.mark.parametrize("extra_cuts", [0, 5, 11, 21])
def test_granularity_level(benchmark, extra_cuts, fragmentations,
                           results):
    schema = fragmentations["LF"].schema
    stats = StatisticsCatalog.synthetic(schema, fanout=5.0)
    model = CostModel(stats, bandwidth=500.0)
    source = Fragmentation.from_roots(
        schema, _source_roots(schema, extra_cuts),
        f"cut{extra_cuts}",
    )
    mapping = derive_mapping(source, fragmentations["LF"])

    result = benchmark.pedantic(
        lambda: greedy_exchange(mapping, model), rounds=1, iterations=1
    )
    combines = sum(
        1 for node in result.program.nodes if node.kind == "combine"
    )
    _COSTS[extra_cuts] = result.cost
    _COMBINES[extra_cuts] = combines
    results.record(
        "ablation-granularity", f"{len(source)} source fragments",
        "estimated cost", round(result.cost, 1),
        title="Ablation: source granularity vs exchange cost "
              "(fixed LF target)",
    )
    results.record(
        "ablation-granularity", f"{len(source)} source fragments",
        "combines", combines,
    )


def test_granularity_shape():
    if len(_COSTS) < 4:
        pytest.skip("run the sweep first")
    # Matching granularity (0 extra cuts == LF == target) is cheapest;
    # cost and combine count grow monotonically with fragmentation.
    levels = sorted(_COSTS)
    costs = [_COSTS[level] for level in levels]
    combines = [_COMBINES[level] for level in levels]
    assert costs == sorted(costs)
    assert combines == sorted(combines)
    assert combines[0] == 0
