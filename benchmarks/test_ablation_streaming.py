"""Ablation — the streaming batch dataplane vs materialized transfer.

Sweeps ``batch_rows`` over {None, 64, 512} on the Figure 9 MF->MF
scenario over a sleeping channel (the wall clock feels communication,
as in the paper's Internet setup).  Materialized transfer holds whole
fragment feeds resident and serializes each edge behind its producer;
the streaming dataplane bounds ``peak_resident_rows`` by the batch
frontier and ships chunk *i* while chunk *i+1* is produced.  Smaller
batches buy a lower peak and more overlap at the price of per-message
latency — the sweep makes that trade-off measurable.

The measured sweep is written to ``BENCH_streaming.json`` at the repo
root (committed: the perf trajectory across PRs).
"""

import json
import pathlib
import time

import pytest

from repro.core.program.executor import ProgramExecutor
from repro.net.transport import NetworkProfile, SimulatedChannel

_BATCH_ROWS = (None, 64, 512)
_RESULTS: dict[str, dict[str, float]] = {}

_PROFILE = NetworkProfile(
    "bench-internet", bandwidth_bytes_per_second=400_000.0,
    latency_seconds=0.002,
)


def _label(batch_rows):
    return "materialized" if batch_rows is None else str(batch_rows)


@pytest.mark.parametrize("batch_rows", _BATCH_ROWS,
                         ids=[_label(b) for b in _BATCH_ROWS])
def test_streaming_sweep(benchmark, batch_rows, size_labels, sources,
                         programs, fresh_target, results):
    label = size_labels[-1]
    source = sources[("MF", label)]
    program, placement = programs["MF->MF"]

    def run():
        target = fresh_target("MF")
        channel = SimulatedChannel(_PROFILE, realtime=True)
        started = time.perf_counter()
        report = ProgramExecutor(
            source, target, channel, batch_rows=batch_rows
        ).run(program, placement)
        wall = time.perf_counter() - started
        return report, wall, target

    report, wall, target = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert target.total_rows() == source.total_rows()

    row = _label(batch_rows)
    _RESULTS[row] = {
        "batch_rows": batch_rows,
        "peak_resident_rows": report.peak_resident_rows,
        "peak_resident_bytes": report.peak_resident_bytes,
        "wall_seconds": round(wall, 4),
        "comm_seconds": round(report.comm_seconds, 4),
        "shipment_batches": sum(
            report.shipment_batches.values()
        ) or report.shipments,
        "rows_per_second": round(report.rows_written / wall, 1),
    }
    results.record(
        "ablation-streaming", row, "peak rows",
        report.peak_resident_rows,
        title="Ablation: streaming dataplane batch-size sweep "
              "(Figure 9 MF->MF, sleeping channel)",
    )
    results.record("ablation-streaming", row, "peak KB",
                   round(report.peak_resident_bytes / 1000, 1))
    results.record("ablation-streaming", row, "wall s", round(wall, 3))
    results.record("ablation-streaming", row, "rows/s",
                   round(report.rows_written / wall, 1))


def test_streaming_shape_and_trajectory_file(results):
    if len(_RESULTS) < len(_BATCH_ROWS):
        pytest.skip("run the sweep first")
    materialized = _RESULTS["materialized"]
    fine = _RESULTS["64"]
    coarse = _RESULTS["512"]
    # The acceptance bound: batching strictly lowers the resident peak.
    assert fine["peak_resident_rows"] < \
        materialized["peak_resident_rows"]
    assert coarse["peak_resident_rows"] <= \
        materialized["peak_resident_rows"]
    # Finer batches can only lower the frontier further.
    assert fine["peak_resident_rows"] <= coarse["peak_resident_rows"]

    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_streaming.json"
    payload = {
        "experiment": "streaming-ablation",
        "scenario": "MF->MF",
        "document": "25MB ladder entry x REPRO_SCALE",
        "channel": {
            "bandwidth_bytes_per_second":
                _PROFILE.bandwidth_bytes_per_second,
            "latency_seconds": _PROFILE.latency_seconds,
            "realtime": True,
        },
        "sweep": _RESULTS,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    results.note(
        "ablation-streaming",
        f"trajectory written to {out.name}",
    )
